// Package hotpath is a golden fixture for the hotpath-alloc analyzer. Every
// `// want "…"` comment is a regexp the driver test matches against the
// diagnostic reported on that line; lines without a want comment must stay
// clean.
package hotpath

import "fmt"

func sink(args ...any) {}

func callback(f func()) { f() }

var prebuilt = map[string]int{}

//samzasql:hotpath
func process(key string, n int) string {
	s := fmt.Sprintf("%s-%d", key, n) // want `fmt\.Sprintf in a //samzasql:hotpath function`
	s = s + key                       // want `string concatenation in //samzasql:hotpath function process`
	s += key                          // want `string concatenation in //samzasql:hotpath function process`
	m := make(map[string]int)         // want `make\(map\) in a //samzasql:hotpath function`
	_ = map[string]int{"a": n}        // want `map literal in //samzasql:hotpath function process`
	callback(func() { _ = key })      // want `closure in //samzasql:hotpath function process captures "key"`
	sink(n)                           // want `passing int as interface argument 0 boxes it`
	m[key] = n
	return s
}

//samzasql:hotpath
func allowed(key string, n int) error {
	// Cold error construction is fine: error paths do not run per message.
	if n < 0 {
		return fmt.Errorf("bad count %d for %s", n, key)
	}
	// Deferred and directly-invoked literals stay on the stack.
	defer func() { _ = key }()
	func() { _ = n }()
	// Constants box into the runtime's static cells or fold away.
	sink(1)
	// Reusing a hoisted map is the prescribed pattern.
	prebuilt[key] = n
	// A closure capturing nothing from this frame does not pin locals.
	callback(func() { prebuilt["x"] = 0 })
	return nil
}

//samzasql:hotpath
func suppressed(key string, n int) string {
	//samzasql:ignore hotpath-alloc -- init-once slow path, guarded by sync.Once upstream
	return fmt.Sprintf("%s-%d", key, n) // want-suppressed `fmt\.Sprintf in a //samzasql:hotpath function`
}

// processBlock documents the vectorized-execution granularity: one
// allocation per *block* is the allowed unit, per-row allocations inside the
// row loop are not. Slice construction (the per-block value slab the broker
// retains), append growth, and boxing into slice elements (columnar []any
// scatter) are all legal; the per-row patterns above remain banned even when
// the function processes blocks.
//
//samzasql:hotpath
func processBlock(rows []int, keys []string) [][]any {
	// Fresh slab per block: the downstream broker retains the value slices,
	// so this cannot be hoisted. One make per block, not per row.
	slab := make([]byte, 0, 1024)
	cols := make([][]any, 1)
	cols[0] = make([]any, len(rows))
	for r, v := range rows {
		slab = append(slab, byte(v))
		// Boxing into a slice element is the columnar scatter pattern; only
		// boxing into interface *call arguments* is flagged.
		cols[0][r] = v
		_ = fmt.Sprintf("row-%d", v) // want `fmt\.Sprintf in a //samzasql:hotpath function`
		sink(v)                      // want `passing int as interface argument 0 boxes it`
		_ = keys[r] + "!"            // want `string concatenation in //samzasql:hotpath function processBlock`
	}
	_ = slab
	return cols
}

// statefulOp models the block-native stateful operators (join, sliding
// window, aggregate): the per-block distinct-key state map and the
// downstream sink live on the operator, the map is cleared by a
// non-annotated reset helper, and the sink closure binds once at Open. The
// hotpath fold loop then runs allocation-free per row; state-map allocation
// granularity is per operator lifetime, never per block or per row.
type statefulOp struct {
	states map[string]int
	keys   []string
	emit   func(k string)
}

// resetStates is deliberately un-annotated: allocating the map on first use
// and clearing it between blocks is the prescribed hoisting pattern for the
// make(map) diagnostic below.
func (o *statefulOp) resetStates() {
	if o.states == nil {
		o.states = make(map[string]int)
	}
	for k := range o.states {
		delete(o.states, k)
	}
	o.keys = o.keys[:0]
}

// bind is the Open-time pattern for the escaping-closure diagnostic: the
// sink closure is constructed once, outside any hot path, and the hot path
// only invokes the stored field.
func (o *statefulOp) bind(sink func(string)) {
	o.emit = func(k string) { sink(k) }
}

//samzasql:hotpath
func (o *statefulOp) foldBlock(rows []int, keys []string) {
	o.resetStates() // legal: the allocation lives in the un-annotated helper
	for r := range rows {
		if _, ok := o.states[keys[r]]; !ok {
			o.keys = append(o.keys, keys[r]) // distinct keys in first-touch order
		}
		o.states[keys[r]] += rows[r]
	}
	for _, k := range o.keys {
		o.emit(k) // legal: bound once in bind, not constructed here
	}
}

//samzasql:hotpath
func (o *statefulOp) foldBlockPerBlockAllocs(rows []int, keys []string, flush func(func(string))) {
	states := make(map[string]int) // want `make\(map\) in a //samzasql:hotpath function`
	for r := range rows {
		states[keys[r]] += rows[r]
	}
	o.states = states
	flush(func(k string) { _ = o.states[k] }) // want `closure in //samzasql:hotpath function foldBlockPerBlockAllocs captures "o" and escapes`
}

// cold has no annotation: the same patterns are legal here.
func cold(key string, n int) string {
	m := make(map[string]int)
	m[key] = n
	sink(n)
	return fmt.Sprintf("%s-%d", key, n)
}

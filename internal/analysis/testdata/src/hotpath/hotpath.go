// Package hotpath is a golden fixture for the hotpath-alloc analyzer. Every
// `// want "…"` comment is a regexp the driver test matches against the
// diagnostic reported on that line; lines without a want comment must stay
// clean.
package hotpath

import "fmt"

func sink(args ...any) {}

func callback(f func()) { f() }

var prebuilt = map[string]int{}

//samzasql:hotpath
func process(key string, n int) string {
	s := fmt.Sprintf("%s-%d", key, n) // want `fmt\.Sprintf in a //samzasql:hotpath function`
	s = s + key                       // want `string concatenation in //samzasql:hotpath function process`
	s += key                          // want `string concatenation in //samzasql:hotpath function process`
	m := make(map[string]int)         // want `make\(map\) in a //samzasql:hotpath function`
	_ = map[string]int{"a": n}        // want `map literal in //samzasql:hotpath function process`
	callback(func() { _ = key })      // want `closure in //samzasql:hotpath function process captures "key"`
	sink(n)                           // want `passing int as interface argument 0 boxes it`
	m[key] = n
	return s
}

//samzasql:hotpath
func allowed(key string, n int) error {
	// Cold error construction is fine: error paths do not run per message.
	if n < 0 {
		return fmt.Errorf("bad count %d for %s", n, key)
	}
	// Deferred and directly-invoked literals stay on the stack.
	defer func() { _ = key }()
	func() { _ = n }()
	// Constants box into the runtime's static cells or fold away.
	sink(1)
	// Reusing a hoisted map is the prescribed pattern.
	prebuilt[key] = n
	// A closure capturing nothing from this frame does not pin locals.
	callback(func() { prebuilt["x"] = 0 })
	return nil
}

//samzasql:hotpath
func suppressed(key string, n int) string {
	//samzasql:ignore hotpath-alloc -- init-once slow path, guarded by sync.Once upstream
	return fmt.Sprintf("%s-%d", key, n) // want-suppressed `fmt\.Sprintf in a //samzasql:hotpath function`
}

// processBlock documents the vectorized-execution granularity: one
// allocation per *block* is the allowed unit, per-row allocations inside the
// row loop are not. Slice construction (the per-block value slab the broker
// retains), append growth, and boxing into slice elements (columnar []any
// scatter) are all legal; the per-row patterns above remain banned even when
// the function processes blocks.
//
//samzasql:hotpath
func processBlock(rows []int, keys []string) [][]any {
	// Fresh slab per block: the downstream broker retains the value slices,
	// so this cannot be hoisted. One make per block, not per row.
	slab := make([]byte, 0, 1024)
	cols := make([][]any, 1)
	cols[0] = make([]any, len(rows))
	for r, v := range rows {
		slab = append(slab, byte(v))
		// Boxing into a slice element is the columnar scatter pattern; only
		// boxing into interface *call arguments* is flagged.
		cols[0][r] = v
		_ = fmt.Sprintf("row-%d", v) // want `fmt\.Sprintf in a //samzasql:hotpath function`
		sink(v)                      // want `passing int as interface argument 0 boxes it`
		_ = keys[r] + "!"            // want `string concatenation in //samzasql:hotpath function processBlock`
	}
	_ = slab
	return cols
}

// cold has no annotation: the same patterns are legal here.
func cold(key string, n int) string {
	m := make(map[string]int)
	m[key] = n
	sink(n)
	return fmt.Sprintf("%s-%d", key, n)
}

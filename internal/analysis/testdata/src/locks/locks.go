// Package locks is a golden fixture for the lock-discipline analyzer:
// copied locks, blocking operations under a held mutex, and returns that
// leak a lock, next to the legal shapes the runtime uses.
package locks

import "sync"

type producer struct{}

func (producer) Produce(v int) error { return nil }

type guarded struct {
	mu   sync.Mutex
	n    int
	vals []int
}

// ---- rule 1: lock values copied ----

func copies(g guarded, grid []guarded) { // want `parameter passes .*guarded by value, copying its sync\.Mutex`
	dup := g.mu // want `copies sync\.Mutex by value`
	_ = &dup
	for _, item := range grid { // want `range value copies .*guarded, which contains a sync\.Mutex`
		_ = item.n
	}
}

func (g guarded) valueReceiver() {} // want `value receiver copies .*guarded, which contains a sync\.Mutex`

// ---- rule 2: blocking operations under a held lock ----

func blockingUnderLock(g *guarded, p producer, ch chan int) {
	g.mu.Lock()
	ch <- 1  // want `channel send while g\.mu is held`
	<-ch     // want `channel receive while g\.mu is held`
	select { // want `blocking select while g\.mu is held`
	case v := <-ch:
		g.n = v
	}
	_ = p.Produce(g.n) // want `calls p\.Produce while g\.mu is held`
	g.mu.Unlock()
	// Unlocked again: the same operations are legal now.
	ch <- 2
	_ = p.Produce(g.n)
}

func legalUnderLock(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	// A select with a default never parks the goroutine.
	select {
	case v := <-ch:
		g.n = v
	default:
	}
}

// snapshotThenSend is the prescribed shape: copy under the lock, operate after.
func snapshotThenSend(g *guarded, p producer) error {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	return p.Produce(n)
}

// ---- rule 3: returns that leak the lock ----

func leakyReturn(g *guarded, stop bool) int {
	g.mu.Lock()
	if stop {
		return 0 // want `returns while g\.mu is locked with no defer g\.mu\.Unlock\(\)`
	}
	g.mu.Unlock()
	return g.n
}

func deferredReturn(g *guarded, stop bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if stop {
		return 0
	}
	return g.n
}

func unlockEveryPath(g *guarded, stop bool) int {
	g.mu.Lock()
	if stop {
		g.mu.Unlock()
		return 0
	}
	n := g.n
	g.mu.Unlock()
	return n
}

func suppressedLeak(g *guarded) int {
	g.mu.Lock()
	//samzasql:ignore lock-discipline -- caller unlocks via guarded.release in the same commit section
	return g.n // want-suppressed `returns while g\.mu is locked`
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MetricsBinding enforces PR 2's pre-bound-handle rule: metric handles are
// looked up from the registry once per task (Init/Open/constructor) and the
// per-message path touches only the returned *Counter/*Gauge/Timer. A
// registry lookup inside Process/Window/poll code takes the registry's
// RWMutex and hashes the metric name per message — exactly the contention
// PR 1 removed from the hot path.
var MetricsBinding = &Analyzer{
	Name: "metrics-binding",
	Doc: "no metrics.Registry name lookups (Counter/Gauge/Histogram/Timer) inside Process/Window " +
		"methods, poll loops, or //samzasql:hotpath functions; bind handles once per task and reuse them",
	Run: runMetricsBinding,
}

// registryLookupMethods are the name-resolving constructors on
// metrics.Registry. Snapshot/Names are reporter-path reads and stay legal.
var registryLookupMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Timer":     true,
}

// processLoopFuncs are function names that are per-message paths by
// convention even without a hotpath annotation.
var processLoopFuncs = map[string]bool{
	"Process": true,
	"Window":  true,
}

func runMetricsBinding(pass *Pass) {
	for _, f := range pass.Files() {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			name := decl.Name.Name
			hot := pass.Pkg.IsHotPath(decl)
			looped := processLoopFuncs[name] || strings.HasPrefix(strings.ToLower(name), "poll")
			if !hot && !looped {
				continue
			}
			why := "a //samzasql:hotpath function"
			if looped {
				why = "a per-message " + name + " path"
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !registryLookupMethods[sel.Sel.Name] {
					return true
				}
				if !isMetricsRegistry(pass.TypeOf(sel.X)) {
					return true
				}
				pass.Reportf(call.Pos(), "registry lookup %s(...) inside %s takes the registry lock and hashes the name per message; bind the handle once per task (Init/Open) and reuse it", sel.Sel.Name, why)
				return true
			})
		}
	}
}

// isMetricsRegistry reports whether t is (a pointer to) the runtime's
// metrics.Registry.
func isMetricsRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/metrics")
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// This file builds per-function control-flow graphs — the foundation the
// interprocedural analyzers (lock-order, chan-leak, hotpath-blocking,
// hotpath-escape) walk instead of re-deriving branch structure from the AST
// the way the older linear analyzers do.
//
// The graph is a conventional basic-block CFG over go/ast statements:
//
//   - Block nodes hold simple statements and the control expressions of the
//     branches that end them (an if's condition, a for's condition, a
//     switch's tag, a select's comm statements). Nested statement bodies are
//     never stored in a block — only their entry edges are — so walking a
//     block's Nodes visits each statement exactly once across the whole
//     graph. Function literals stay embedded in their statement node; they
//     are separate functions with their own CFGs (see callgraph.go).
//   - Every function has one Entry and one synthetic Exit. return, panic and
//     the implicit fall-off-the-end all edge to Exit.
//   - defer statements appear in their block (registration order matters for
//     some analyses) and are additionally collected on CFG.Defers, modeling
//     their bodies running at Exit.
//   - break/continue/goto (labeled or not) and fallthrough become real
//     edges, so loop and switch shapes are faithful.

// Block is one basic block: a maximal straight-line run of statements with
// branch-free control flow, plus the edges leaving it.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, deterministic).
	Index int
	// Kind labels what created the block ("entry", "exit", "body",
	// "if.then", "if.else", "for.head", "for.body", "range.head",
	// "switch.case", "select.comm", "join") — for tests and debugging.
	Kind string
	// Nodes are the block's statements and control expressions in execution
	// order. Entries are simple statements (no nested statement bodies
	// except inside function literals) or bare expressions.
	Nodes []ast.Node
	// Succs are the blocks control may transfer to next.
	Succs []*Block
	// Preds are the inverse edges, filled in after construction.
	Preds []*Block
}

func (b *Block) addSucc(s *Block) {
	if s == nil {
		return
	}
	for _, have := range b.Succs {
		if have == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// CFG is one function body's control-flow graph.
type CFG struct {
	// Blocks lists every block; Blocks[0] is Entry and Blocks[1] is Exit.
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers collects the body's defer statements in registration order;
	// their calls conceptually run at Exit.
	Defers []*ast.DeferStmt
	// Returns collects the body's return statements (for naming exit paths
	// in diagnostics). A function can also fall off its closing brace; End
	// positions that.
	Returns []*ast.ReturnStmt
	// End is the position of the body's closing brace.
	End token.Pos
}

// cfgBuilder carries the under-construction graph and the break/continue/
// goto resolution state.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block statements are being appended to; nil while the
	// current position is unreachable (just after return/break/...).
	cur *Block
	// breakTargets / continueTargets stack one entry per enclosing
	// breakable/continuable statement, innermost last.
	breakTargets    []cfgTarget
	continueTargets []cfgTarget
	// labelBlocks maps a label name to the entry block of its statement,
	// for goto; gotos to labels seen later are patched at the end.
	labelBlocks  map[string]*Block
	pendingGotos []pendingGoto
	// pendingLabel is set between seeing a LabeledStmt and building its
	// statement, so loops know the label their break/continue answer to.
	pendingLabel string
}

type cfgTarget struct {
	label string
	block *Block
	// pushedCont records whether this break-stack entry pushed a matching
	// continue-stack entry (loops do; switch/select don't), so popLoop
	// unwinds both stacks in step.
	pushedCont bool
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:         &CFG{End: body.Rbrace},
		labelBlocks: map[string]*Block{},
	}
	entry := b.newBlock("entry")
	b.cfg.Entry = entry
	exit := b.newBlock("exit")
	b.cfg.Exit = exit
	b.cur = entry
	b.stmtList(body.List)
	if b.cur != nil { // fell off the end
		b.cur.addSucc(exit)
	}
	for _, g := range b.pendingGotos {
		if target, ok := b.labelBlocks[g.label]; ok {
			g.from.addSucc(target)
		} else {
			g.from.addSucc(exit) // label outside the analyzed body; be safe
		}
	}
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// startBlock begins a new block and makes it current, linking it from the
// previous current block when that one is live.
func (b *cfgBuilder) startBlock(kind string) *Block {
	blk := b.newBlock(kind)
	if b.cur != nil {
		b.cur.addSucc(blk)
	}
	b.cur = blk
	return blk
}

// emit appends a node to the current block, creating one if control just
// became reachable again (dead code after return still gets blocks so its
// statements are visible to analyzers, just unreachable ones).
func (b *cfgBuilder) emit(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ExprStmt:
		b.emit(s)
		if isPanicCall(s.X) {
			if b.cur != nil {
				b.cur.addSucc(b.cfg.Exit)
			}
			b.cur = nil
		}

	case *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt, *ast.EmptyStmt:
		b.emit(stmt)

	case *ast.GoStmt:
		b.emit(s)

	case *ast.DeferStmt:
		b.emit(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ReturnStmt:
		b.emit(s)
		b.cfg.Returns = append(b.cfg.Returns, s)
		if b.cur != nil {
			b.cur.addSucc(b.cfg.Exit)
		}
		b.cur = nil

	case *ast.LabeledStmt:
		// The labeled statement gets its own entry block so goto/labeled
		// break/continue have a target.
		entry := b.startBlock("label." + s.Label.Name)
		b.labelBlocks[s.Label.Name] = entry
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.emit(s)
		from := b.cur
		b.cur = nil
		if from == nil {
			return
		}
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breakTargets, label); t != nil {
				from.addSucc(t)
			} else {
				from.addSucc(b.cfg.Exit)
			}
		case token.CONTINUE:
			if t := findTarget(b.continueTargets, label); t != nil {
				from.addSucc(t)
			} else {
				from.addSucc(b.cfg.Exit)
			}
		case token.GOTO:
			if t, ok := b.labelBlocks[label]; ok {
				from.addSucc(t)
			} else {
				b.pendingGotos = append(b.pendingGotos, pendingGoto{from: from, label: label})
			}
		case token.FALLTHROUGH:
			// Handled by the enclosing switch builder: the clause body's
			// final block is linked to the next clause there. Restore cur so
			// switchStmt sees a live end-of-clause block.
			b.cur = from
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(s.Cond)
		cond := b.cur
		if cond == nil {
			cond = b.startBlock("dead")
		}
		join := b.newBlock("join")

		b.cur = nil
		thenBlk := b.newBlock("if.then")
		cond.addSucc(thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.cur.addSucc(join)
		}

		if s.Else != nil {
			elseBlk := b.newBlock("if.else")
			cond.addSucc(elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			if b.cur != nil {
				b.cur.addSucc(join)
			}
		} else {
			cond.addSucc(join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.startBlock("for.head")
		if s.Cond != nil {
			b.emit(s.Cond)
		}
		after := b.newBlock("for.after")
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			post.addSucc(head)
		}
		continueTo := head
		if post != nil {
			continueTo = post
		}
		b.pushLoop(label, after, continueTo)

		body := b.newBlock("for.body")
		head.addSucc(body)
		if s.Cond != nil {
			head.addSucc(after) // condition may be false
		}
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			if post != nil {
				b.cur.addSucc(post)
			} else {
				b.cur.addSucc(head)
			}
		}
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.startBlock("range.head")
		b.emit(s.X)
		after := b.newBlock("range.after")
		head.addSucc(after) // empty iteration space
		b.pushLoop(label, after, head)

		body := b.newBlock("range.body")
		head.addSucc(body)
		b.cur = body
		// The per-iteration key/value assignment is part of the head
		// conceptually; analyzers needing it can look at s.Key/s.Value via
		// the emitted s.X's parent. Keep the body clean.
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.cur.addSucc(head)
		}
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.switchBody(label, s.Body, func(c ast.Stmt) []ast.Node {
			clause := c.(*ast.CaseClause)
			nodes := make([]ast.Node, 0, len(clause.List))
			for _, e := range clause.List {
				nodes = append(nodes, e)
			}
			return nodes
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(s.Assign)
		b.switchBody(label, s.Body, func(c ast.Stmt) []ast.Node { return nil })

	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.cur
		if sel == nil {
			sel = b.startBlock("dead")
		}
		after := b.newBlock("select.after")
		b.pushLoop(label, after, nil) // break inside select targets after
		hasDefault := false
		for _, c := range s.Body.List {
			clause := c.(*ast.CommClause)
			comm := b.newBlock("select.comm")
			sel.addSucc(comm)
			b.cur = comm
			if clause.Comm != nil {
				b.stmt(clause.Comm)
			} else {
				hasDefault = true
			}
			b.stmtList(clause.Body)
			if b.cur != nil {
				b.cur.addSucc(after)
			}
		}
		_ = hasDefault // a select with no cases blocks forever; keep after unreachable then
		if len(s.Body.List) == 0 {
			// select{} blocks forever: model as an edge to exit so the
			// function's paths stay complete.
			sel.addSucc(b.cfg.Exit)
		}
		b.popLoop()
		b.cur = after

	default:
		// Unknown statement kinds (none today) are treated as simple.
		b.emit(stmt)
	}
}

// switchBody builds the clause blocks of a (type)switch: every clause entry
// hangs off the current block, fallthrough chains clause bodies, and a
// missing default adds a direct edge past the switch.
func (b *cfgBuilder) switchBody(label string, body *ast.BlockStmt, clauseNodes func(ast.Stmt) []ast.Node) {
	swtch := b.cur
	if swtch == nil {
		swtch = b.startBlock("dead")
	}
	after := b.newBlock("switch.after")
	b.pushLoop(label, after, nil) // break inside the switch targets after

	hasDefault := false
	type builtClause struct {
		entry               *Block
		endsWithFallthrough bool
		last                *Block
	}
	clauses := make([]builtClause, 0, len(body.List))
	for _, c := range body.List {
		clause := c.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		entry := b.newBlock("switch.case")
		for _, n := range clauseNodes(c) {
			entry.Nodes = append(entry.Nodes, n)
		}
		swtch.addSucc(entry)
		b.cur = entry
		ft := false
		if n := len(clause.Body); n > 0 {
			if br, ok := clause.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				ft = true
			}
		}
		b.stmtList(clause.Body)
		last := b.cur
		if last != nil && !ft {
			last.addSucc(after)
		}
		clauses = append(clauses, builtClause{entry: entry, endsWithFallthrough: ft, last: last})
		b.cur = nil
	}
	for i, c := range clauses {
		if c.endsWithFallthrough && c.last != nil && i+1 < len(clauses) {
			c.last.addSucc(clauses[i+1].entry)
		}
	}
	if !hasDefault {
		swtch.addSucc(after)
	}
	b.popLoop()
	b.cur = after
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	entry := cfgTarget{label: label, block: brk, pushedCont: cont != nil}
	b.breakTargets = append(b.breakTargets, entry)
	if cont != nil {
		b.continueTargets = append(b.continueTargets, cfgTarget{label: label, block: cont})
	}
}

func (b *cfgBuilder) popLoop() {
	top := b.breakTargets[len(b.breakTargets)-1]
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	if top.pushedCont {
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
	}
}

// takeLabel consumes the pending label set by an enclosing LabeledStmt.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findTarget resolves a break/continue target: the innermost entry when the
// label is empty, the labeled entry otherwise.
func findTarget(stack []cfgTarget, label string) *Block {
	if label == "" {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// isPanicCall reports whether e is a direct call to the predeclared panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// ReachableFrom reports whether to is reachable from from along CFG edges,
// optionally refusing to travel through blocks for which barred returns
// true (the from and to blocks themselves are never barred).
func (c *CFG) ReachableFrom(from, to *Block, barred func(*Block) bool) bool {
	if from == to {
		return true
	}
	seen := make([]bool, len(c.Blocks))
	stack := []*Block{from}
	seen[from.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if s == to {
				return true
			}
			if seen[s.Index] {
				continue
			}
			if barred != nil && barred(s) {
				continue
			}
			seen[s.Index] = true
			stack = append(stack, s)
		}
	}
	return false
}

// String renders the graph compactly for tests: "0(entry)->2,3 ...".
func (c *CFG) String() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "%d(%s)->", blk.Index, blk.Kind)
		for i, s := range blk.Succs {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

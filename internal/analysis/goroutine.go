package analysis

import (
	"go/ast"
	"strings"
)

// GoroutineSupervision enforces the container's errgroup-style discipline
// (PR 1): every goroutine the runtime spawns must be joined by a supervisor
// — a WaitGroup the spawner waits on — so container shutdown cannot leak
// work and a panicking task cannot strand siblings. A bare `go` statement
// with no `defer …Done()` in its body escapes Run's wg.Wait() and outlives
// the container.
//
// Scope: internal/samza and internal/yarn (the two packages that own
// goroutine lifecycles), plus packages with //samzasql:enforce
// goroutine-supervision.
var GoroutineSupervision = &Analyzer{
	Name: "goroutine-supervision",
	Doc: "go statements in internal/samza and internal/yarn must be supervised: the goroutine body " +
		"defers a …Done() (WaitGroup join) so a supervisor can drain it on shutdown",
	Run: runGoroutineSupervision,
}

var goroutineScope = []string{
	"internal/samza",
	"internal/yarn",
}

func inGoroutineScope(pkg *Package) bool {
	if pkg.Enforces("goroutine-supervision") {
		return true
	}
	for _, suffix := range goroutineScope {
		if strings.HasSuffix(pkg.PkgPath, suffix) {
			return true
		}
	}
	return false
}

func runGoroutineSupervision(pass *Pass) {
	if !inGoroutineScope(pass.Pkg) {
		return
	}
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fl, ok := g.Call.Fun.(*ast.FuncLit); ok && deferresDone(fl) {
				return true
			}
			pass.Reportf(g.Pos(), "unsupervised goroutine: the body never defers a …Done(), so no supervisor joins it on shutdown; wrap it in a WaitGroup (wg.Add(1); go func() { defer wg.Done(); … }()) that the owner waits on")
			return true
		})
	}
}

// deferresDone reports whether the goroutine body contains `defer x.Done()`
// — the WaitGroup join that makes it drainable by a supervisor.
func deferresDone(fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			found = true
			return false
		}
		return true
	})
	return found
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAlloc checks functions annotated //samzasql:hotpath for the
// allocation patterns the de-allocated message paths (PR 1/PR 3) banned:
// fmt.Sprint-family calls, string concatenation, map construction, escaping
// closures that capture locals, and interface boxing of numeric values.
// Cold error construction (fmt.Errorf on failure paths) is deliberately
// allowed: error paths do not run per message.
var HotpathAlloc = &Analyzer{
	Name: "hotpath-alloc",
	Doc: "functions marked //samzasql:hotpath must not allocate per call: no fmt.Sprint*, " +
		"no string concatenation, no make(map)/map literals, no escaping closures capturing " +
		"locals, no boxing of numeric values into interface arguments",
	Run: runHotpathAlloc,
}

// sprintFamily are the fmt formatters whose result is a fresh allocation on
// the happy path. fmt.Errorf is excluded: it only runs on error paths.
var sprintFamily = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Appendf":  true,
}

func runHotpathAlloc(pass *Pass) {
	for _, decl := range pass.Pkg.HotPathFuncs() {
		checkHotpathBody(pass, decl)
	}
}

func checkHotpathBody(pass *Pass, decl *ast.FuncDecl) {
	// Function literals invoked directly or via defer stay on the stack
	// (open-coded defers); everything else — go statements, call arguments,
	// assignments — may force the closure and its captures to escape.
	nonEscaping := map[*ast.FuncLit]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				nonEscaping[fl] = true
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if fl, ok := call.Fun.(*ast.FuncLit); ok {
					nonEscaping[fl] = true
				}
			}
		}
		return true
	})

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotpathCall(pass, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.TypeOf(n)) {
				pass.Reportf(n.OpPos, "string concatenation in //samzasql:hotpath function %s allocates; use a reused []byte scratch buffer or pre-build the string outside the loop", decl.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(pass.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.TokPos, "string concatenation in //samzasql:hotpath function %s allocates", decl.Name.Name)
			}
		case *ast.CompositeLit:
			if t := pass.TypeOf(n); t != nil && isMapType(t) {
				pass.Reportf(n.Pos(), "map literal in //samzasql:hotpath function %s allocates; hoist the map to the enclosing struct and reuse it", decl.Name.Name)
			}
		case *ast.FuncLit:
			if nonEscaping[n] {
				return true
			}
			if name, ok := capturedLocal(pass, decl, n); ok {
				pass.Reportf(n.Pos(), "closure in //samzasql:hotpath function %s captures %q and escapes (go statement, argument or assignment); bind it once outside the hot path", decl.Name.Name, name)
			}
			return false // captures inside nested literals are reported once, at the outermost literal
		}
		return true
	})
}

func checkHotpathCall(pass *Pass, call *ast.CallExpr) {
	// make(map[...]...)
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) > 0 {
		if t := pass.TypeOf(call.Args[0]); t != nil && isMapType(t) {
			pass.Reportf(call.Pos(), "make(map) in a //samzasql:hotpath function allocates per call; hoist the map and reuse it (clear() between uses)")
			return
		}
	}
	// fmt.Sprint family. fmt.Errorf is exempt from this and the boxing check
	// below: error construction only runs on failure paths, not per message.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkgID, ok := sel.X.(*ast.Ident); ok {
			if obj, ok := pass.Info().Uses[pkgID].(*types.PkgName); ok && obj.Imported().Path() == "fmt" {
				if sprintFamily[sel.Sel.Name] {
					pass.Reportf(call.Pos(), "fmt.%s in a //samzasql:hotpath function allocates its result (and boxes every argument); use strconv/append helpers or move formatting off the hot path", sel.Sel.Name)
				}
				return
			}
		}
	}
	// Interface boxing: a non-constant numeric/bool value passed where the
	// callee takes an interface heap-allocates the box.
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing here
			}
			slice, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice)
			if !ok {
				continue
			}
			param = slice.Elem()
		case i < params.Len():
			param = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		tv, ok := pass.Info().Types[arg]
		if !ok || tv.Value != nil {
			continue // constants box into the runtime's static cells or fold away
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || basic.Info()&(types.IsNumeric|types.IsBoolean) == 0 {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s as interface argument %d boxes it (one allocation per call) in a //samzasql:hotpath function", tv.Type, i)
	}
}

// capturedLocal returns the name of a variable declared in decl (parameter,
// receiver or local) that fl references, if any.
func capturedLocal(pass *Pass, decl *ast.FuncDecl, fl *ast.FuncLit) (string, bool) {
	found := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info().Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() < decl.Pos() || v.Pos() > decl.End() {
			return true // package-level or other-function variable
		}
		if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
			return true // the literal's own local
		}
		found = v.Name()
		return false
	})
	return found, found != ""
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// Package analysis is a small, stdlib-only static-analysis framework plus
// the project-specific analyzers that machine-check the runtime's hot-path,
// locking and commit-order invariants. PRs 1–3 made the runtime fast by
// imposing rules the compiler cannot see (zero-allocation message paths,
// metrics handles bound once per task, store-flush → changelog-flush →
// offset-commit ordering, single-lock poll passes); this package turns those
// rules from comments into diagnostics with file:line positions, so a
// refactor that silently regresses one fails `samzasql-vet` instead of a
// benchmark three PRs later.
//
// The framework is deliberately tiny: a loader built on go/parser +
// go/types + go/importer (no golang.org/x/tools dependency), an Analyzer
// interface, and comment directives:
//
//	//samzasql:hotpath          marks a function as allocation-sensitive;
//	                            hotpath-alloc checks its body
//	//samzasql:enforce a,b      opts a package into the scoped analyzers
//	                            a and b (used by fixtures; the runtime
//	                            packages are in scope by import path)
//	//samzasql:ignore [a,b] …   suppresses findings (optionally only from
//	                            analyzers a,b) on this line and the next
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run inspects a single type-checked package
// and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //samzasql:ignore / //samzasql:enforce directive lists.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check over pass.Pkg (per-package analyzers).
	Run func(pass *Pass)
	// RunProgram performs the check over pass.Prog — the whole-module view
	// with CFGs and the call graph. Exactly one of Run/RunProgram is set;
	// RunProgram analyzers are invoked once per Run call, not per package.
	RunProgram func(pass *Pass)
}

// Diagnostic is one finding, positioned at a file:line:col.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed is set when a //samzasql:ignore directive covers the
	// finding; suppressed diagnostics do not fail the build.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of its subject: one package (Pkg set)
// for per-package analyzers, the whole program (Prog set) for
// interprocedural ones.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the whole-module view (CFGs + call graph); set only for
	// RunProgram analyzers.
	Prog *Program

	diags *[]Diagnostic
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet {
	if p.Pkg != nil {
		return p.Pkg.Fset
	}
	return p.Prog.Fset
}

// Files returns the package's parsed syntax trees.
func (p *Pass) Files() []*ast.File { return p.Pkg.Syntax }

// Info returns the package's type information.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset().Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package, resolves //samzasql:ignore
// suppressions, and returns the diagnostics sorted by position. Suppressed
// findings are included (marked) so callers can surface them with -show-ignored.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	var wholeProgram []*Analyzer
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.RunProgram != nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunProgram != nil {
			wholeProgram = append(wholeProgram, a)
		}
	}
	if len(wholeProgram) > 0 {
		prog := BuildProgram(pkgs)
		for _, a := range wholeProgram {
			pass := &Pass{Analyzer: a, Prog: prog, diags: &diags}
			a.RunProgram(pass)
		}
	}
	for i := range diags {
		d := &diags[i]
		for _, pkg := range pkgs {
			if pkg.directives.suppresses(d.Pos, d.Analyzer) {
				d.Suppressed = true
				break
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Unsuppressed filters diags down to the findings that should fail a build.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

package analysis

import "testing"

// Each fixture package proves its analyzer on at least one true positive,
// at least one legal shape, and one //samzasql:ignore suppression.

func TestHotpathAllocFixture(t *testing.T) {
	checkFixture(t, "hotpath", HotpathAlloc)
}

func TestMetricsBindingFixture(t *testing.T) {
	checkFixture(t, "metricsbind", MetricsBinding)
}

func TestLockDisciplineFixture(t *testing.T) {
	checkFixture(t, "locks", LockDiscipline)
}

func TestErrDropFixture(t *testing.T) {
	checkFixture(t, "errdrop", ErrDrop)
}

func TestGoroutineSupervisionFixture(t *testing.T) {
	checkFixture(t, "goroutine", GoroutineSupervision)
}

func TestTraceGuardFixture(t *testing.T) {
	checkFixture(t, "traceguard", TraceGuard)
}

func TestProfileGuardFixture(t *testing.T) {
	checkFixture(t, "profileguard", ProfileGuard)
}

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, "lockorder", LockOrder)
}

func TestChanLeakFixture(t *testing.T) {
	checkFixture(t, "chanleak", ChanLeak)
}

func TestHotpathBlockingFixture(t *testing.T) {
	checkFixture(t, "hotpathblock", HotpathBlocking)
}

func TestHotpathEscapeFixture(t *testing.T) {
	checkFixture(t, "hotpathescape", HotpathEscape)
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop guards the commit-order contract: store-flush → changelog-flush →
// offset-commit only holds if every error on that chain is propagated. A
// Flush/Commit/Produce call whose error result is dropped on the floor can
// silently break exactly-once recovery (a checkpoint written after a failed
// flush commits offsets ahead of durable state).
//
// Scope: the runtime packages that own the commit path (internal/kv,
// internal/kafka, internal/samza), plus any package carrying a
// //samzasql:enforce error-drop directive (fixtures). Only statement-level
// drops are flagged; an explicit `_ = x.Flush()` is treated as an audited
// decision and left alone.
var ErrDrop = &Analyzer{
	Name: "error-drop",
	Doc: "no ignored error results on Flush/Commit/Checkpoint/Produce-class calls in internal/kv, " +
		"internal/kafka, internal/samza; assign and propagate, or write an explicit `_ =` with rationale",
	Run: runErrDrop,
}

// errDropScope are the import-path suffixes the analyzer applies to.
var errDropScope = []string{
	"internal/kv",
	"internal/kafka",
	"internal/samza",
}

// commitChainMethods are the commit/produce-chain method names whose error
// results must not be dropped.
var commitChainMethods = map[string]bool{
	"Flush":        true,
	"Commit":       true,
	"Checkpoint":   true,
	"Produce":      true,
	"ProduceBatch": true,
	"Send":         true,
	"SendBatch":    true,
	"SendTo":       true,
	"Write":        true,
	"Restore":      true,
}

func inErrDropScope(pkg *Package) bool {
	if pkg.Enforces("error-drop") {
		return true
	}
	for _, suffix := range errDropScope {
		if strings.HasSuffix(pkg.PkgPath, suffix) {
			return true
		}
	}
	return false
}

func runErrDrop(pass *Pass) {
	if !inErrDropScope(pass.Pkg) {
		return
	}
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
				how = "discarded"
			case *ast.GoStmt:
				call = n.Call
				how = "discarded by the go statement"
			case *ast.DeferStmt:
				call = n.Call
				how = "discarded by the defer"
			}
			if call == nil {
				return true
			}
			name, ok := calleeName(call)
			if !ok || !commitChainMethods[name] {
				return true
			}
			if !lastResultIsError(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error result of %s(...) is %s; a dropped %s error breaks the store-flush → changelog-flush → offset-commit contract — handle it, or write `_ = …` with a rationale comment", name, how, name)
			return true
		})
	}
}

func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	case *ast.Ident:
		return fun.Name, true
	}
	return "", false
}

func lastResultIsError(pass *Pass, call *ast.CallExpr) bool {
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results() == nil || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

package analysis

import (
	"testing"
)

// TestRepoIsClean runs the full suite over the repository itself, the same
// way `make vet-custom` does, and fails on any unsuppressed finding. This is
// the check that keeps the runtime honest between CI runs of the CLI: a
// change that drops a commit-chain error or allocates on a hot path breaks
// `go test ./internal/analysis` locally, not just the vet step.
func TestRepoIsClean(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadPatterns(./...) found no packages")
	}
	diags := Run(pkgs, Suite())
	for _, d := range Unsuppressed(diags) {
		t.Errorf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
	}
}

// TestRepoHasHotpathAnnotations guards the annotation satellite: the message
// hot paths must stay marked, otherwise hotpath-alloc silently checks
// nothing. The exact function set may grow, but it must never shrink to the
// point of vacuity.
func TestRepoHasHotpathAnnotations(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	perPkg := map[string]int{}
	for _, pkg := range pkgs {
		n := len(pkg.HotPathFuncs())
		total += n
		perPkg[pkg.PkgPath] = n
	}
	if total < 5 {
		t.Fatalf("only %d //samzasql:hotpath functions in the tree; the message hot paths must stay annotated", total)
	}
	for _, want := range []string{
		"samzasql/internal/samza",
		"samzasql/internal/kafka",
		"samzasql/internal/kv",
		"samzasql/internal/monitor",
		"samzasql/internal/operators",
	} {
		if perPkg[want] == 0 {
			t.Errorf("package %s has no //samzasql:hotpath annotations left", want)
		}
	}
}

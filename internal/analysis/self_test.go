package analysis

import (
	"testing"
)

// TestRepoIsClean runs the full suite over the repository itself, the same
// way `make vet-custom` does, and fails on any unsuppressed finding. This is
// the check that keeps the runtime honest between CI runs of the CLI: a
// change that drops a commit-chain error or allocates on a hot path breaks
// `go test ./internal/analysis` locally, not just the vet step.
func TestRepoIsClean(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadPatterns(./...) found no packages")
	}
	diags := Run(pkgs, Suite())
	for _, d := range Unsuppressed(diags) {
		t.Errorf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
	}
}

// TestSuiteHasInterproceduralRules pins the whole-program rules into the
// suite: dropping one from Suite() would silently stop checking deadlock
// freedom, channel hygiene, and the hot-path blocking/escape contracts
// everywhere (TestRepoIsClean and make vet-custom both run Suite()).
func TestSuiteHasInterproceduralRules(t *testing.T) {
	have := map[string]bool{}
	for _, a := range Suite() {
		have[a.Name] = true
	}
	for _, want := range []string{"lock-order", "chan-leak", "hotpath-blocking", "hotpath-escape"} {
		if !have[want] {
			t.Errorf("Suite() lost the %s analyzer", want)
		}
		a := ByName(want)
		if a == nil {
			t.Errorf("ByName(%q) = nil", want)
			continue
		}
		if a.RunProgram == nil {
			t.Errorf("%s must be a whole-program (RunProgram) analyzer", want)
		}
	}
}

// TestRepoHasHotpathAnnotations guards the annotation satellite: the message
// hot paths must stay marked, otherwise hotpath-alloc silently checks
// nothing. The exact function set may grow, but it must never shrink to the
// point of vacuity.
func TestRepoHasHotpathAnnotations(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	perPkg := map[string]int{}
	for _, pkg := range pkgs {
		n := len(pkg.HotPathFuncs())
		total += n
		perPkg[pkg.PkgPath] = n
	}
	// The interprocedural rules (hotpath-blocking, hotpath-escape) root their
	// whole-program walks at these annotations, so shrinking the set now
	// blinds four analyzers, not one. The floor sits well under the current
	// count (~35) but far above vacuity.
	if total < 20 {
		t.Fatalf("only %d //samzasql:hotpath functions in the tree; the message hot paths must stay annotated", total)
	}
	for _, want := range []string{
		"samzasql/internal/samza",
		"samzasql/internal/kafka",
		"samzasql/internal/kv",
		"samzasql/internal/monitor",
		"samzasql/internal/operators",
		"samzasql/internal/executor",
	} {
		if perPkg[want] == 0 {
			t.Errorf("package %s has no //samzasql:hotpath annotations left", want)
		}
	}
}

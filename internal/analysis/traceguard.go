package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// TraceGuard enforces the tracing subsystem's hot-path contract: inside
// //samzasql:hotpath functions, every call into internal/trace (span
// recording, context construction, cursor methods) must sit inside an if
// whose condition checks the sample bit — `if act.Sampled() { ... }` or
// `if m.Trace.Sampled { ... }`. The Sampled check itself is the guard and
// stays legal anywhere; everything else the package does (clock reads, span
// recording, ID generation) is sampled-only work that must never run on the
// unsampled fast path.
var TraceGuard = &Analyzer{
	Name: "trace-guard",
	Doc: "calls into internal/trace inside //samzasql:hotpath functions must be guarded by a " +
		"branch on the sample bit (if x.Sampled() or if x.Trace.Sampled); the unsampled path " +
		"stays branch-only",
	Run: runTraceGuard,
}

func runTraceGuard(pass *Pass) {
	for _, decl := range pass.Pkg.HotPathFuncs() {
		checkTraceGuard(pass, decl)
	}
}

func checkTraceGuard(pass *Pass, decl *ast.FuncDecl) {
	// Guarded regions: bodies of if statements whose condition mentions a
	// Sampled identifier (method call or struct field — both spellings of
	// the sample bit). Lexical containment is the check; an early-return
	// inversion (`if !sampled { return }`) deliberately does not count, so
	// the guarded work stays visibly bracketed.
	var guarded []*ast.BlockStmt
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !mentionsSampled(ifs.Cond) {
			return true
		}
		guarded = append(guarded, ifs.Body)
		return true
	})
	inGuard := func(n ast.Node) bool {
		for _, b := range guarded {
			if n.Pos() >= b.Pos() && n.End() <= b.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := traceCallee(pass, call)
		if fn == nil || fn.Name() == "Sampled" || inGuard(call) {
			return true
		}
		pass.Reportf(call.Pos(), "unguarded trace.%s call in //samzasql:hotpath function %s costs the unsampled path; branch on the sample bit first: if x.Sampled() { ... } or if x.Trace.Sampled { ... }", fn.Name(), decl.Name.Name)
		return true
	})
}

// mentionsSampled reports whether a condition references an identifier or
// selector named Sampled.
func mentionsSampled(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "Sampled" {
			found = true
			return false
		}
		return !found
	})
	return found
}

// traceCallee resolves call's target and returns it when it lives in the
// internal/trace package (package functions and methods on its types alike).
func traceCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.Info().Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/trace") {
		return nil
	}
	return fn
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotpathEscape is a conservative escape check over the hotpath call tree:
// every function reachable from a //samzasql:hotpath root (not just the
// annotated bodies hotpath-alloc covers) is scanned for the address-escape
// patterns that force a local onto the heap:
//
//   - &local flowing into an interface conversion (call argument with an
//     interface parameter, assignment to an interface-typed location);
//   - &local stored beyond the frame: assigned through a selector or index,
//     placed in a composite literal, appended to a slice, sent on a channel,
//     or returned;
//   - a closure capturing an enclosing local and escaping (go statement,
//     call argument, assignment) — checked only in non-annotated functions,
//     since hotpath-alloc already reports this inside annotated bodies.
//
// "Conservative" cuts both ways: the rules fire only on syntactically
// evident escapes (no alias tracking), and anything they do flag is a real
// heap allocation on a path a hot root can reach — each diagnostic names the
// root and call route so the reader can judge how hot the site actually is.
var HotpathEscape = &Analyzer{
	Name: "hotpath-escape",
	Doc: "no function reachable from a //samzasql:hotpath root may leak the address of a " +
		"local — into an interface conversion, a stored slice/composite/channel, a return " +
		"value, or an escaping closure — since each leak is a per-call heap allocation",
	RunProgram: runHotpathEscape,
}

func runHotpathEscape(pass *Pass) {
	g := pass.Prog.Graph

	// Reachability from hotpath roots with one witness route per function.
	// `go` sites are excluded: a spawned goroutine runs off the hot path.
	route := map[*Func][]string{}
	var queue []*Func
	for _, fn := range g.Funcs {
		if fn.IsHotPath() && !g.GoOnlyLiteral(fn) {
			route[fn] = nil
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, site := range g.Sites[fn] {
			if site.Go {
				continue
			}
			for _, callee := range site.Callees {
				if _, seen := route[callee]; seen {
					continue
				}
				route[callee] = append(append([]string{}, route[fn]...), fn.Name())
				queue = append(queue, callee)
			}
		}
	}

	reached := make([]*Func, 0, len(route))
	for fn := range route {
		reached = append(reached, fn)
	}
	sort.Slice(reached, func(i, j int) bool { return reached[i].Pos() < reached[j].Pos() })
	for _, fn := range reached {
		checkEscapes(pass, fn, route[fn])
	}
}

// checkEscapes scans one function's own body for address escapes.
func checkEscapes(pass *Pass, fn *Func, route []string) {
	if fn.CFG == nil {
		return
	}
	info := fn.Pkg.Info

	where := func() string {
		if len(route) == 0 {
			return "in hot path " + fn.Name()
		}
		return "in " + fn.Name() + " (reached from hot path via " + strings.Join(route, " → ") + ")"
	}

	// addrLocal returns the named local whose address e takes, or "".
	addrLocal := func(e ast.Expr) string {
		u, ok := ast.Unparen(e).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			return ""
		}
		id, ok := ast.Unparen(u.X).(*ast.Ident)
		if !ok {
			return ""
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return ""
		}
		if v.Pos() < fn.Pos() || v.Pos() > fn.Body().End() {
			return "" // package-level or outer-function variable
		}
		return v.Name()
	}

	report := func(pos token.Pos, name, how string) {
		pass.Reportf(pos, "&%s %s heap-allocates %s on every call; reuse a field or pass the value",
			name, how, where())
	}

	walkLockNodes(fn, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkCallEscapes(info, x, addrLocal, report)
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				name := addrLocal(rhs)
				if name == "" || i >= len(x.Lhs) {
					continue
				}
				switch lhs := ast.Unparen(x.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					_ = lhs
					report(rhs.Pos(), name, "stored through "+exprStringInfo(fn, x.Lhs[i]))
				default:
					if t := info.TypeOf(x.Lhs[i]); t != nil && types.IsInterface(t) {
						report(rhs.Pos(), name, "converted to interface "+t.String())
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if name := addrLocal(r); name != "" {
					report(r.Pos(), name, "returned")
				}
			}
		case *ast.SendStmt:
			if name := addrLocal(x.Value); name != "" {
				report(x.Value.Pos(), name, "sent on a channel")
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if name := addrLocal(v); name != "" {
					report(v.Pos(), name, "stored in a composite literal")
				}
			}
		}
	})

	// Escaping closures capturing locals — only where hotpath-alloc does not
	// already enforce it (annotated bodies and their nested literals).
	if fn.IsHotPath() {
		return
	}
	nonEscaping := map[*ast.FuncLit]bool{}
	ast.Inspect(fn.Body(), func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				nonEscaping[fl] = true
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if fl, ok := call.Fun.(*ast.FuncLit); ok {
					nonEscaping[fl] = true
				}
			}
		}
		return true
	})
	for _, stmt := range fn.Body().List {
		ast.Inspect(stmt, func(n ast.Node) bool {
			fl, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !nonEscaping[fl] {
				if name, ok := capturedEnclosingLocal(info, fn, fl); ok {
					pass.Reportf(fl.Pos(),
						"closure captures %q and escapes %s; the capture heap-allocates — bind the value once outside the hot tree",
						name, where())
				}
			}
			return false // one report at the outermost literal
		})
	}
}

// checkCallEscapes flags &local call arguments that convert to interface
// parameters, and &local operands of append.
func checkCallEscapes(info *types.Info, call *ast.CallExpr, addrLocal func(ast.Expr) string, report func(token.Pos, string, string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			for _, arg := range call.Args[1:] {
				if name := addrLocal(arg); name != "" {
					report(arg.Pos(), name, "appended to a slice that outlives the frame")
				}
			}
			return
		}
	}
	sig, ok := typeOfFun(info, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		name := addrLocal(arg)
		if name == "" {
			continue
		}
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue
			}
			slice, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice)
			if !ok {
				continue
			}
			param = slice.Elem()
		case i < params.Len():
			param = params.At(i).Type()
		default:
			continue
		}
		if param != nil && types.IsInterface(param) {
			report(arg.Pos(), name, "converted to interface parameter "+param.String())
		}
	}
}

func typeOfFun(info *types.Info, call *ast.CallExpr) (*types.Signature, bool) {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// capturedEnclosingLocal reports a variable declared in fn (outside fl) that
// fl references — the capture that forces a heap allocation when fl escapes.
func capturedEnclosingLocal(info *types.Info, fn *Func, fl *ast.FuncLit) (string, bool) {
	found := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() < fn.Pos() || v.Pos() > fn.Body().End() {
			return true // not fn's local
		}
		if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
			return true // the literal's own local
		}
		found = v.Name()
		return false
	})
	return found, found != ""
}

// exprStringInfo renders e using fn's package fset.
func exprStringInfo(fn *Func, e ast.Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	return sb.String()
}

// writeExpr is a minimal expression printer for diagnostics (selectors,
// indexes and identifiers; anything else prints as <expr>).
func writeExpr(sb *strings.Builder, e ast.Expr) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		sb.WriteString(x.Name)
	case *ast.SelectorExpr:
		writeExpr(sb, x.X)
		sb.WriteByte('.')
		sb.WriteString(x.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(sb, x.X)
		sb.WriteString("[…]")
	case *ast.StarExpr:
		sb.WriteByte('*')
		writeExpr(sb, x.X)
	default:
		sb.WriteString("<expr>")
	}
}

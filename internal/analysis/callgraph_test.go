package analysis

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFixtureProgram builds the whole-program view over one fixture package.
func loadFixtureProgram(t *testing.T, name string) *Program {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "samzasql-vet-fixtures/"+name)
	if err != nil {
		t.Fatal(err)
	}
	return BuildProgram([]*Package{pkg})
}

// funcNamed finds a graph node by display name.
func funcNamed(t *testing.T, g *CallGraph, name string) *Func {
	t.Helper()
	for _, fn := range g.Funcs {
		if fn.Name() == name {
			return fn
		}
	}
	var names []string
	for _, fn := range g.Funcs {
		names = append(names, fn.Name())
	}
	t.Fatalf("no function %q in graph; have: %s", name, strings.Join(names, ", "))
	return nil
}

// calleeNames flattens all resolved callees of fn's sites.
func calleeNames(g *CallGraph, fn *Func) []string {
	var names []string
	for _, site := range g.Sites[fn] {
		for _, c := range site.Callees {
			names = append(names, c.Name())
		}
	}
	sort.Strings(names)
	return names
}

func TestCallGraphStaticResolution(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph")
	g := prog.Graph
	static := funcNamed(t, g, "callgraph.Static")
	got := calleeNames(g, static)
	if len(got) != 1 || got[0] != "callgraph.helper" {
		t.Errorf("Static callees = %v, want [callgraph.helper]", got)
	}
	// Reverse edges: helper is called from Static and from three literals.
	helper := funcNamed(t, g, "callgraph.helper")
	callers := map[string]bool{}
	for _, site := range g.CallerSites[helper] {
		callers[site.Caller.Name()] = true
	}
	if !callers["callgraph.Static"] {
		t.Errorf("helper callers = %v, want to include callgraph.Static", callers)
	}
}

func TestCallGraphDevirtualization(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph")
	g := prog.Graph
	use := funcNamed(t, g, "callgraph.UseIface")
	got := calleeNames(g, use)
	want := []string{"(*callgraph.DiskStore).Get", "(callgraph.MemStore).Get"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("UseIface devirtualized callees = %v, want %v", got, want)
	}
	for _, site := range g.Sites[use] {
		if site.Unknown {
			t.Error("UseIface site marked Unknown; devirtualization should have resolved it")
		}
	}
}

func TestCallGraphDevirtualizationBound(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph")
	g := prog.Graph
	use := funcNamed(t, g, "callgraph.UseWide")
	sites := g.Sites[use]
	if len(sites) != 1 {
		t.Fatalf("UseWide sites = %d, want 1", len(sites))
	}
	if !sites[0].Unknown {
		t.Error("call through a >devirtLimit interface should be Unknown")
	}
	if len(sites[0].Callees) != 0 {
		t.Errorf("over-wide site resolved %d callees, want 0", len(sites[0].Callees))
	}
}

func TestCallGraphLiterals(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph")
	g := prog.Graph
	lits := funcNamed(t, g, "callgraph.Literals")

	var goSite, deferSite, directLit, varCall *CallSite
	for _, site := range g.Sites[lits] {
		switch {
		case site.Go:
			goSite = site
		case site.Deferred:
			deferSite = site
		case len(site.Callees) == 1 && strings.Contains(site.Callees[0].Name(), "$lit"):
			directLit = site
		case site.Unknown:
			varCall = site
		}
	}
	if goSite == nil || len(goSite.Callees) != 1 || !strings.Contains(goSite.Callees[0].Name(), "$lit") {
		t.Error("go literal site not resolved to its literal Func")
	}
	if deferSite == nil || len(deferSite.Callees) != 1 {
		t.Error("defer literal site not resolved")
	}
	if directLit == nil {
		t.Error("directly-invoked literal not resolved")
	}
	if varCall == nil {
		t.Error("call through a function variable should be Unknown")
	}

	// The literals each carry their own CFG and resolve their own helper call.
	for _, fn := range g.Funcs {
		if fn.Parent != lits {
			continue
		}
		if fn.CFG == nil {
			t.Errorf("literal %s has no CFG", fn.Name())
		}
	}
}

func TestFixpointTerminatesOnCycle(t *testing.T) {
	prog := loadFixtureProgram(t, "callgraph")
	g := prog.Graph

	// Fact: the set of function names transitively reachable. Recurse and
	// Mutual call each other, so without a fixpoint this never settles; with
	// one it must converge with each member containing both names.
	type reachFact map[string]bool
	store := g.Fixpoint(func(fn *Func, get func(*Func) Fact) Fact {
		out := reachFact{}
		for _, site := range g.Sites[fn] {
			for _, callee := range site.Callees {
				out[callee.Name()] = true
				if cf, _ := get(callee).(reachFact); cf != nil {
					for name := range cf {
						out[name] = true
					}
				}
			}
		}
		return out
	}, func(old, new Fact) bool {
		of, _ := old.(reachFact)
		nf, _ := new.(reachFact)
		if len(of) != len(nf) {
			return false
		}
		for k := range nf {
			if !of[k] {
				return false
			}
		}
		return true
	})

	rec := funcNamed(t, g, "callgraph.Recurse")
	mut := funcNamed(t, g, "callgraph.Mutual")
	rf, _ := store.Get(rec).(reachFact)
	mf, _ := store.Get(mut).(reachFact)
	if rf == nil || !rf["callgraph.Mutual"] || !rf["callgraph.Recurse"] {
		t.Errorf("Recurse fact = %v, want both cycle members", rf)
	}
	if mf == nil || !mf["callgraph.Recurse"] || !mf["callgraph.Mutual"] {
		t.Errorf("Mutual fact = %v, want both cycle members", mf)
	}
}

package analysis

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// expectation is one `// want "…"` or `// want-suppressed "…"` comment in a
// fixture file: a regexp the diagnostic on that line must match.
type expectation struct {
	file       string
	line       int
	re         *regexp.Regexp
	suppressed bool
	matched    bool
}

var wantRE = regexp.MustCompile("//\\s*(want|want-suppressed)\\s+`([^`]+)`")

// parseExpectations extracts the want comments from every .go file in dir.
func parseExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", path, m[2], err)
				}
				wants = append(wants, &expectation{
					file:       path,
					line:       fset.Position(c.Pos()).Line,
					re:         re,
					suppressed: m[1] == "want-suppressed",
				})
			}
		}
	}
	return wants
}

// checkFixture loads the fixture package in testdata/src/<name>, runs one
// analyzer over it, and verifies the diagnostics against the fixture's want
// comments: every want must be hit by a matching diagnostic with the right
// suppression state, and every diagnostic must be claimed by a want.
func checkFixture(t *testing.T, name string, analyzer *Analyzer) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "samzasql-vet-fixtures/"+name)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{analyzer})
	wants := parseExpectations(t, dir)

	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if !w.re.MatchString(d.Message) {
				continue
			}
			if w.suppressed != d.Suppressed {
				t.Errorf("%s: diagnostic %q suppressed=%v, want comment expects suppressed=%v",
					d.Pos, d.Message, d.Suppressed, w.suppressed)
			}
			w.matched = true
			claimed = true
			break
		}
		if !claimed {
			t.Errorf("unexpected diagnostic %s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package plus the directive index the
// analyzers consult.
type Package struct {
	// PkgPath is the import path ("samzasql/internal/kv").
	PkgPath string
	// Dir is the absolute directory the sources were read from.
	Dir    string
	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info

	directives *directiveIndex
}

// Loader parses and type-checks packages of one module from source, with
// stdlib dependencies imported from compiled export data. It is stdlib-only:
// module-internal import paths are resolved by mapping them onto directories
// under the module root, which is all a single self-contained module needs.
type Loader struct {
	// ModuleRoot is the absolute directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's import-path prefix ("samzasql").
	ModulePath string
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet

	std      types.Importer
	pkgs     map[string]*Package // memoized by import path
	loading  map[string]bool     // cycle guard
	typeErrs []error
}

// NewLoader builds a loader rooted at the directory holding go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: module root %s: %w", abs, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", abs)
	}
	return &Loader{
		ModuleRoot: abs,
		ModulePath: modPath,
		Fset:       token.NewFileSet(),
		std:        importer.Default(),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// Import implements types.Importer: module-internal paths load from source,
// everything else (the stdlib) comes from compiled export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) dirFor(pkgPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, l.ModulePath), "/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// load parses and type-checks one module-internal package (memoized).
func (l *Loader) load(pkgPath string) (*Package, error) {
	if pkg, ok := l.pkgs[pkgPath]; ok {
		return pkg, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)
	pkg, err := l.loadDir(l.dirFor(pkgPath), pkgPath)
	if err != nil {
		return nil, err
	}
	l.pkgs[pkgPath] = pkg
	return pkg, nil
}

// LoadDir parses and type-checks the package in dir under the given import
// path. Test files (_test.go) are excluded: the analyzers guard the runtime,
// and test-only code is free to allocate, spawn, and drop errors as it
// pleases.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	if pkg, ok := l.pkgs[pkgPath]; ok {
		return pkg, nil
	}
	pkg, err := l.loadDir(dir, pkgPath)
	if err != nil {
		return nil, err
	}
	l.pkgs[pkgPath] = pkg
	return pkg, nil
}

func (l *Loader) loadDir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: package %s: %w", pkgPath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return l.Fset.Position(files[i].Pos()).Filename < l.Fset.Position(files[j].Pos()).Filename
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	pkg := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.Fset,
		Syntax:  files,
		Types:   tpkg,
		Info:    info,
	}
	pkg.directives = indexDirectives(pkg)
	return pkg, nil
}

// LoadPatterns resolves package patterns to loaded packages. Supported
// patterns, matching what `go run ./cmd/samzasql-vet` is invoked with:
//
//	./...       every package under the module root
//	./x/...     every package under directory x
//	./x, x      the single package in directory x
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	addTree := func(root string) error {
		return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") {
				return filepath.SkipDir
			}
			if hasGoSource(path) && !seen[path] {
				seen[path] = true
				dirs = append(dirs, path)
			}
			return nil
		})
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := addTree(l.ModuleRoot); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			if err := addTree(root); err != nil {
				return nil, err
			}
		default:
			dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := l.ModulePath
		if rel != "." {
			pkgPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(pkgPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoSource(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of a single function and returns it.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "cfg_test.go", file, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, file)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// checkShape builds the CFG of src and compares its rendered edge list.
func checkShape(t *testing.T, src, want string) *CFG {
	t.Helper()
	cfg := BuildCFG(parseBody(t, src))
	got := strings.TrimSpace(cfg.String())
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("CFG shape mismatch for:\n%s\ngot:\n%s\nwant:\n%s", src, got, want)
	}
	return cfg
}

func TestCFGStraightLine(t *testing.T) {
	checkShape(t, `
x := 1
x = 2
`, `
0(entry)->1
1(exit)->
`)
}

func TestCFGIfElse(t *testing.T) {
	checkShape(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
x = 4
`, `
0(entry)->3,4
1(exit)->
2(join)->1
3(if.then)->2
4(if.else)->2
`)
}

func TestCFGIfNoElse(t *testing.T) {
	cfg := checkShape(t, `
x := 1
if x > 0 {
	x = 2
}
x = 3
`, `
0(entry)->3,2
1(exit)->
2(join)->1
3(if.then)->2
`)
	// The condition expression is recorded in the branching block.
	found := false
	for _, n := range cfg.Blocks[0].Nodes {
		if _, ok := n.(*ast.BinaryExpr); ok {
			found = true
		}
	}
	if !found {
		t.Error("if condition expression not recorded in the branch block")
	}
}

func TestCFGForBreakContinue(t *testing.T) {
	checkShape(t, `
x := 0
for i := 0; i < 10; i++ {
	if i == 3 {
		break
	}
	if i == 4 {
		continue
	}
	x = i
}
x = 9
`, `
0(entry)->2
1(exit)->
2(for.head)->5,3
3(for.after)->1
4(for.post)->2
5(for.body)->7,6
6(join)->9,8
7(if.then)->3
8(join)->4
9(if.then)->4
`)
}

func TestCFGForInfinite(t *testing.T) {
	// No condition: the only way past the loop is the break edge.
	checkShape(t, `
for {
	if done() {
		break
	}
}
x := 1
`, `
0(entry)->2
1(exit)->
2(for.head)->4
3(for.after)->1
4(for.body)->6,5
5(join)->2
6(if.then)->3
`)
}

func TestCFGRange(t *testing.T) {
	checkShape(t, `
total := 0
for _, v := range xs {
	total += v
}
`, `
0(entry)->2
1(exit)->
2(range.head)->3,4
3(range.after)->1
4(range.body)->2
`)
}

func TestCFGSwitchFallthrough(t *testing.T) {
	checkShape(t, `
a := 0
switch x {
case 1:
	a = 1
	fallthrough
case 2:
	a = 2
default:
	a = 3
}
`, `
0(entry)->3,4,5
1(exit)->
2(switch.after)->1
3(switch.case)->4
4(switch.case)->2
5(switch.case)->2
`)
}

func TestCFGSwitchNoDefault(t *testing.T) {
	// Without a default the switch head can fall through to after directly.
	checkShape(t, `
switch x {
case 1:
	f()
}
`, `
0(entry)->3,2
1(exit)->
2(switch.after)->1
3(switch.case)->2
`)
}

func TestCFGSelect(t *testing.T) {
	cfg := checkShape(t, `
select {
case v := <-ch:
	use(v)
case ch2 <- 1:
default:
	x := 0
	_ = x
}
`, `
0(entry)->3,4,5
1(exit)->
2(select.after)->1
3(select.comm)->2
4(select.comm)->2
5(select.comm)->2
`)
	// Comm statements land in their clause blocks, not the select's block.
	if len(cfg.Blocks[3].Nodes) == 0 {
		t.Error("receive comm statement not recorded in its select.comm block")
	}
}

func TestCFGEmptySelectBlocksForever(t *testing.T) {
	// select{} blocks forever: the entry edges straight to exit and the
	// after-block is unreachable (its own exit edge is a dead artifact of
	// falling off the end).
	cfg := checkShape(t, `
select {}
`, `
0(entry)->1
1(exit)->
2(select.after)->1
`)
	if len(cfg.Blocks[2].Preds) != 0 {
		t.Error("select.after should be unreachable after select{}")
	}
}

func TestCFGDeferAndReturn(t *testing.T) {
	cfg := checkShape(t, `
defer cleanup()
if x > 0 {
	return
}
x = 1
`, `
0(entry)->3,2
1(exit)->
2(join)->1
3(if.then)->1
`)
	if len(cfg.Defers) != 1 {
		t.Errorf("Defers = %d, want 1", len(cfg.Defers))
	}
	if len(cfg.Returns) != 1 {
		t.Errorf("Returns = %d, want 1", len(cfg.Returns))
	}
}

func TestCFGPanicEdgesToExit(t *testing.T) {
	checkShape(t, `
if x > 0 {
	panic("boom")
}
x = 1
`, `
0(entry)->3,2
1(exit)->
2(join)->1
3(if.then)->1
`)
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	checkShape(t, `
outer:
for {
	for {
		if x == 1 {
			break outer
		}
		if x == 2 {
			continue outer
		}
		x++
	}
}
x = 5
`, `
0(entry)->2
1(exit)->
2(label.outer)->3
3(for.head)->5
4(for.after)->1
5(for.body)->6
6(for.head)->8
7(for.after)->3
8(for.body)->10,9
9(join)->12,11
10(if.then)->4
11(join)->6
12(if.then)->3
`)
}

func TestCFGGotoBackward(t *testing.T) {
	checkShape(t, `
retry:
x := try()
if x == 0 {
	goto retry
}
`, `
0(entry)->2
1(exit)->
2(label.retry)->4,3
3(join)->1
4(if.then)->2
`)
}

func TestCFGDeadCodeAfterReturn(t *testing.T) {
	cfg := checkShape(t, `
return
x := 1
_ = x
`, `
0(entry)->1
1(exit)->
2(dead)->1
`)
	// The dead block is visible (analyzers can see its nodes) but has no
	// predecessors.
	if len(cfg.Blocks[2].Preds) != 0 {
		t.Error("dead code block should be unreachable")
	}
}

func TestCFGReachableFrom(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `
x := 1
if x > 0 {
	recv()
}
x = 2
`))
	// Exit is reachable from entry avoiding the then-block (the recv).
	var thenBlk *Block
	for _, b := range cfg.Blocks {
		if b.Kind == "if.then" {
			thenBlk = b
		}
	}
	if thenBlk == nil {
		t.Fatal("no if.then block")
	}
	if !cfg.ReachableFrom(cfg.Entry, cfg.Exit, func(b *Block) bool { return b == thenBlk }) {
		t.Error("exit should be reachable around the then branch")
	}
	// But barring the join kills every route.
	if cfg.ReachableFrom(cfg.Entry, cfg.Exit, func(b *Block) bool { return b.Kind == "join" || b.Kind == "if.then" }) {
		t.Error("exit should not be reachable with both routes barred")
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide call graph the interprocedural analyzers
// propagate summaries over. Nodes are functions — declared functions and
// methods plus function literals, each with its own CFG — and edges are
// call sites resolved through go/types:
//
//   - direct calls to module functions and methods resolve statically;
//   - interface method calls are devirtualized to every module type whose
//     method set satisfies the interface, bounded by devirtLimit (beyond
//     the bound the site is marked Unknown rather than fanning out);
//   - calls through function values (fields, parameters, variables) are
//     Unknown — the analyzers treat Unknown sites conservatively per rule;
//   - go and defer call sites keep their spawn/defer nature on the edge, so
//     analyses can decide whether facts flow across them (a goroutine does
//     not block its spawner; a deferred call runs on every exit path).

// devirtLimit bounds interface-call devirtualization: when more module
// types implement the called interface, the site is marked Unknown instead
// of adding an edge per implementation. This keeps wide interfaces (say, a
// future multi-backend Store with a dozen engines) from turning every
// virtual call into an everything-calls-everything blowup.
const devirtLimit = 12

// Func is one analyzable function: a declared function/method (Decl set) or
// a function literal (Lit set).
type Func struct {
	// Obj is the type-checker object for declared functions; nil for
	// literals.
	Obj *types.Func
	// Decl / Lit: exactly one is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Parent is the enclosing Func for literals; nil for declarations.
	Parent *Func
	// Pkg is the package the function was parsed from.
	Pkg *Package
	// CFG is the function body's control-flow graph (nil when the decl has
	// no body).
	CFG *CFG

	name string
}

// Name returns a stable printable name: "pkg.Fn", "(*pkg.T).Method", or
// "pkg.Fn$litN" for literals.
func (f *Func) Name() string { return f.name }

// Body returns the function body (nil for bodiless declarations).
func (f *Func) Body() *ast.BlockStmt {
	if f.Decl != nil {
		return f.Decl.Body
	}
	return f.Lit.Body
}

// Pos returns the function's source position.
func (f *Func) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return f.Lit.Pos()
}

// IsHotPath reports whether the function (or, for literals, its outermost
// enclosing declaration) carries the //samzasql:hotpath directive.
func (f *Func) IsHotPath() bool {
	root := f
	for root.Parent != nil {
		root = root.Parent
	}
	return root.Decl != nil && root.Pkg.IsHotPath(root.Decl)
}

// CallSite is one resolved call expression within a caller.
type CallSite struct {
	Caller *Func
	Call   *ast.CallExpr
	// Go / Deferred mark `go f()` and `defer f()` sites.
	Go       bool
	Deferred bool
	// Callees are the module-internal functions the call may reach.
	Callees []*Func
	// Unknown is set when at least one possible target could not be
	// resolved (function values, over-wide interfaces, external callbacks).
	Unknown bool
}

// CallGraph indexes every function and call site of a Program.
type CallGraph struct {
	// Funcs lists every function in deterministic (position) order.
	Funcs []*Func
	// ByObj maps declared function objects to their node.
	ByObj map[*types.Func]*Func
	// ByLit maps literal syntax to its node.
	ByLit map[*ast.FuncLit]*Func
	// Sites lists each function's call sites in source order.
	Sites map[*Func][]*CallSite
	// CallerSites lists the sites that may invoke a function.
	CallerSites map[*Func][]*CallSite
}

// Program is the whole-module view a whole-program analyzer runs over.
type Program struct {
	Pkgs  []*Package
	Fset  *token.FileSet
	Graph *CallGraph

	// concreteTypes caches every module named type (for devirtualization).
	concreteTypes []*types.Named
}

// BuildProgram assembles CFGs and the call graph for a set of packages.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{Pkgs: pkgs}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	} else {
		prog.Fset = token.NewFileSet()
	}
	g := &CallGraph{
		ByObj:       map[*types.Func]*Func{},
		ByLit:       map[*ast.FuncLit]*Func{},
		Sites:       map[*Func][]*CallSite{},
		CallerSites: map[*Func][]*CallSite{},
	}
	prog.Graph = g

	// Pass 1: collect functions (decls first, then literals inside them, in
	// source order) and module named types.
	for _, pkg := range pkgs {
		prog.collectTypes(pkg)
		for _, file := range pkg.Syntax {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				fn := &Func{
					Obj:  obj,
					Decl: fd,
					Pkg:  pkg,
					CFG:  BuildCFG(fd.Body),
					name: declName(pkg, fd, obj),
				}
				g.Funcs = append(g.Funcs, fn)
				if obj != nil {
					g.ByObj[obj] = fn
				}
				prog.collectLiterals(fn)
			}
		}
	}

	// Pass 2: resolve call sites.
	for _, fn := range g.Funcs {
		prog.resolveSites(fn)
	}
	for _, fn := range g.Funcs {
		for _, site := range g.Sites[fn] {
			for _, callee := range site.Callees {
				g.CallerSites[callee] = append(g.CallerSites[callee], site)
			}
		}
	}
	return prog
}

// collectLiterals registers every function literal in fn's own body (not in
// nested literals — those are registered by their own parent) as a child
// Func with its own CFG.
func (p *Program) collectLiterals(fn *Func) {
	n := 0
	var walk func(node ast.Node)
	walk = func(node ast.Node) {
		ast.Inspect(node, func(x ast.Node) bool {
			lit, ok := x.(*ast.FuncLit)
			if !ok {
				return true
			}
			child := &Func{
				Lit:    lit,
				Parent: fn,
				Pkg:    fn.Pkg,
				CFG:    BuildCFG(lit.Body),
				name:   fmt.Sprintf("%s$lit%d", fn.name, n+1),
			}
			n++
			p.Graph.Funcs = append(p.Graph.Funcs, child)
			p.Graph.ByLit[lit] = child
			p.collectLiterals(child)
			return false // nested literals handled by the recursive call above
		})
	}
	// Inspect the body but skip the root itself re-matching.
	for _, stmt := range fn.Body().List {
		walk(stmt)
	}
}

// collectTypes caches the package's named types for devirtualization.
func (p *Program) collectTypes(pkg *Package) {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if types.IsInterface(named) {
			continue
		}
		p.concreteTypes = append(p.concreteTypes, named)
	}
}

// resolveSites finds and resolves every call site in fn's own body
// (excluding nested literals, which own their sites).
func (p *Program) resolveSites(fn *Func) {
	info := fn.Pkg.Info
	var sites []*CallSite

	var visit func(node ast.Node, inGo, inDefer bool)
	visit = func(node ast.Node, inGo, inDefer bool) {
		ast.Inspect(node, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false // its own Func resolves its sites
			case *ast.GoStmt:
				sites = append(sites, p.resolveCall(fn, info, x.Call, true, false))
				for _, arg := range x.Call.Args {
					visit(arg, false, false)
				}
				visit(x.Call.Fun, false, false)
				return false
			case *ast.DeferStmt:
				sites = append(sites, p.resolveCall(fn, info, x.Call, false, true))
				for _, arg := range x.Call.Args {
					visit(arg, false, false)
				}
				visit(x.Call.Fun, false, false)
				return false
			case *ast.CallExpr:
				sites = append(sites, p.resolveCall(fn, info, x, inGo, inDefer))
				return true // arguments may contain further calls
			}
			return true
		})
	}
	for _, stmt := range fn.Body().List {
		visit(stmt, false, false)
	}
	// Source order keeps downstream output deterministic.
	sort.SliceStable(sites, func(i, j int) bool { return sites[i].Call.Pos() < sites[j].Call.Pos() })
	p.Graph.Sites[fn] = sites
}

// resolveCall classifies one call expression.
func (p *Program) resolveCall(caller *Func, info *types.Info, call *ast.CallExpr, isGo, isDefer bool) *CallSite {
	site := &CallSite{Caller: caller, Call: call, Go: isGo, Deferred: isDefer}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			p.addStaticCallee(site, obj)
		case *types.Builtin, *types.TypeName:
			// Builtins and conversions: no edge, fully resolved.
		case *types.Var:
			site.Unknown = true // function value
		case nil:
			// Defs (shouldn't happen for a call) or unresolved: be safe.
			site.Unknown = true
		default:
			site.Unknown = true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj, ok := sel.Obj().(*types.Func)
			if !ok {
				site.Unknown = true // func-typed field value
				break
			}
			recv := sel.Recv()
			if types.IsInterface(derefType(recv)) {
				p.devirtualize(site, derefType(recv), obj)
			} else {
				p.addStaticCallee(site, obj)
			}
		} else {
			// Qualified identifier (pkg.Fn) or type conversion.
			switch obj := info.Uses[fun.Sel].(type) {
			case *types.Func:
				p.addStaticCallee(site, obj)
			case *types.TypeName:
				// conversion
			case *types.Var:
				site.Unknown = true
			default:
				site.Unknown = true
			}
		}
	case *ast.FuncLit:
		if fn, ok := p.Graph.ByLit[fun]; ok {
			site.Callees = append(site.Callees, fn)
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.InterfaceType, *ast.StarExpr:
		// type conversion
	case *ast.IndexExpr, *ast.IndexListExpr:
		// generic instantiation or indexed function value; resolve the
		// underlying object when it is a function.
		if id := indexedIdent(fun); id != nil {
			if obj, ok := info.Uses[id].(*types.Func); ok {
				p.addStaticCallee(site, obj)
				break
			}
		}
		site.Unknown = true
	default:
		site.Unknown = true
	}
	return site
}

func indexedIdent(e ast.Expr) *ast.Ident {
	switch x := e.(type) {
	case *ast.IndexExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id
		}
	case *ast.IndexListExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id
		}
	}
	return nil
}

// addStaticCallee records obj as a target when it is a module function with
// a body; stdlib and bodiless targets resolve to nothing (the analyzers
// classify external calls directly from the call expression).
func (p *Program) addStaticCallee(site *CallSite, obj *types.Func) {
	if obj == nil {
		return
	}
	if fn, ok := p.Graph.ByObj[obj.Origin()]; ok {
		site.Callees = append(site.Callees, fn)
	}
}

// devirtualize resolves an interface method call to every module type whose
// method set satisfies the interface, bounded by devirtLimit.
func (p *Program) devirtualize(site *CallSite, iface types.Type, method *types.Func) {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		site.Unknown = true
		return
	}
	var targets []*Func
	for _, named := range p.concreteTypes {
		var impl types.Type
		switch {
		case types.Implements(named, it):
			impl = named
		case types.Implements(types.NewPointer(named), it):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, method.Pkg(), method.Name())
		fnObj, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if fn, ok := p.Graph.ByObj[fnObj.Origin()]; ok {
			targets = append(targets, fn)
		}
	}
	if len(targets) > devirtLimit {
		site.Unknown = true
		return
	}
	// Interface values can also hold types outside the module (stdlib or
	// test doubles); note the residual uncertainty without giving up the
	// resolved fan-out.
	site.Callees = append(site.Callees, targets...)
}

// derefType strips one level of pointer.
func derefType(t types.Type) types.Type {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// declName renders a declared function's stable display name.
func declName(pkg *Package, fd *ast.FuncDecl, obj *types.Func) string {
	short := pkg.PkgPath
	if i := strings.LastIndex(short, "/"); i >= 0 {
		short = short[i+1:]
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return short + "." + fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	ptr := false
	if se, ok := recv.(*ast.StarExpr); ok {
		ptr = true
		recv = se.X
	}
	name := "?"
	switch r := recv.(type) {
	case *ast.Ident:
		name = r.Name
	case *ast.IndexExpr:
		if id, ok := r.X.(*ast.Ident); ok {
			name = id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := r.X.(*ast.Ident); ok {
			name = id.Name
		}
	}
	if ptr {
		return fmt.Sprintf("(*%s.%s).%s", short, name, fd.Name.Name)
	}
	return fmt.Sprintf("(%s.%s).%s", short, name, fd.Name.Name)
}

// GoOnlyLiteral reports whether fn is a function literal whose every known
// call site spawns it with `go` — it never runs on its definer's stack, so
// hot-path rules do not apply to its body.
func (g *CallGraph) GoOnlyLiteral(fn *Func) bool {
	if fn.Lit == nil {
		return false
	}
	sites := g.CallerSites[fn]
	if len(sites) == 0 {
		return false
	}
	for _, s := range sites {
		if !s.Go {
			return false
		}
	}
	return true
}

// FuncAt returns the Func containing pos, preferring the innermost literal.
func (g *CallGraph) FuncAt(pos token.Pos) *Func {
	var best *Func
	for _, fn := range g.Funcs {
		body := fn.Body()
		if body == nil || pos < body.Pos() || pos > body.End() {
			continue
		}
		if best == nil || (body.Pos() >= best.Body().Pos() && body.End() <= best.Body().End()) {
			best = fn
		}
	}
	return best
}

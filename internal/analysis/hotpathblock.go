package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotpathBlocking walks the call tree under every //samzasql:hotpath root
// and reports any path that can reach a blocking operation: a mutex
// Lock/RLock, an unguarded channel send/receive, a select without default, a
// sync.WaitGroup/Cond wait, time.Sleep, or an I/O call (os, net, syscall,
// fmt/log printing). The per-message paths were made fast by making them
// straight-line (PR 1/PR 3); this rule keeps a refactor three layers down —
// say a store helper growing a retry sleep — from quietly re-introducing a
// stall that only shows up as tail latency.
//
// The analysis is a bottom-up summary fixpoint over the call graph: each
// function's fact is the set of blocking operations it may reach, keyed by
// the leaf operation's position so multiple routes to one operation converge
// and report once. Boundary rule: a callee that is itself hotpath-annotated
// contributes nothing to its callers — it is its own reporting root, so each
// blocking fact is reported (and suppressed) exactly once, at the annotation
// level that owns it. `go` sites never propagate (spawning does not block
// the spawner); deferred calls do (they run before the hot frame returns).
var HotpathBlocking = &Analyzer{
	Name: "hotpath-blocking",
	Doc: "no path from a //samzasql:hotpath function may reach a blocking operation — " +
		"mutex Lock, unguarded channel send/receive, select without default, WaitGroup/Cond " +
		"wait, time.Sleep, or I/O — unless suppressed with a rationale at the call site",
	RunProgram: runHotpathBlocking,
}

// blockFact is one blocking operation a function may reach. Keyed by the
// leaf position, so the fact domain is finite and propagation converges.
type blockFact struct {
	// what describes the leaf operation ("c.mu.Lock()", "channel receive").
	what string
	// leafPos is where the operation itself is.
	leafPos token.Pos
	// chain names the call route from the summarized function to the leaf
	// (empty when the operation is in the function's own body).
	chain []string
}

func (f blockFact) key() string { return fmt.Sprintf("%d", f.leafPos) }

// blockSummary is the per-function fixpoint fact.
type blockSummary struct {
	facts map[string]blockFact
}

func runHotpathBlocking(pass *Pass) {
	g := pass.Prog.Graph

	store := g.Fixpoint(func(fn *Func, get func(*Func) Fact) Fact {
		sum := &blockSummary{facts: map[string]blockFact{}}
		for _, f := range directBlockingOps(fn) {
			sum.facts[f.key()] = f
		}
		for _, site := range g.Sites[fn] {
			if site.Go {
				continue
			}
			for _, callee := range site.Callees {
				if callee.IsHotPath() {
					continue // boundary: the callee reports its own facts
				}
				cs, _ := get(callee).(*blockSummary)
				if cs == nil {
					continue
				}
				for key, f := range cs.facts {
					if _, ok := sum.facts[key]; ok {
						continue
					}
					sum.facts[key] = blockFact{
						what:    f.what,
						leafPos: f.leafPos,
						chain:   append([]string{callee.Name()}, f.chain...),
					}
				}
			}
		}
		return sum
	}, func(old, new Fact) bool {
		os, _ := old.(*blockSummary)
		ns, _ := new.(*blockSummary)
		if os == nil || ns == nil {
			return os == ns
		}
		if len(os.facts) != len(ns.facts) {
			return false
		}
		for k := range ns.facts {
			if _, ok := os.facts[k]; !ok {
				return false
			}
		}
		return true
	})

	// Report: every hotpath function (annotated decls and the literals inside
	// them) is a root; its own direct ops report at the op, facts from
	// non-hotpath callees report at the call site that pulls them in.
	for _, fn := range g.Funcs {
		if !fn.IsHotPath() || g.GoOnlyLiteral(fn) {
			continue
		}
		type rep struct {
			pos token.Pos
			msg string
		}
		var reps []rep
		for _, f := range directBlockingOps(fn) {
			reps = append(reps, rep{pos: f.leafPos, msg: fmt.Sprintf(
				"%s blocks inside hot path %s; per-message paths must stay lock- and wait-free (move the operation off the hot path or suppress with a rationale)",
				f.what, fn.Name())})
		}
		// Facts reached through a call are grouped per call site: one
		// diagnostic per site with the shortest route as witness, so a
		// single suppression line covers everything the call pulls in.
		type siteFact struct {
			f     blockFact
			route []string
		}
		for _, site := range g.Sites[fn] {
			if site.Go {
				continue
			}
			seen := map[string]bool{}
			var facts []siteFact
			for _, callee := range site.Callees {
				if callee.IsHotPath() {
					continue
				}
				cs, _ := store.Get(callee).(*blockSummary)
				if cs == nil {
					continue
				}
				keys := make([]string, 0, len(cs.facts))
				for k := range cs.facts {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					if seen[k] {
						continue
					}
					seen[k] = true
					f := cs.facts[k]
					facts = append(facts, siteFact{f: f, route: append([]string{callee.Name()}, f.chain...)})
				}
			}
			if len(facts) == 0 {
				continue
			}
			sort.SliceStable(facts, func(i, j int) bool {
				if len(facts[i].route) != len(facts[j].route) {
					return len(facts[i].route) < len(facts[j].route)
				}
				return facts[i].f.leafPos < facts[j].f.leafPos
			})
			w := facts[0]
			msg := fmt.Sprintf("call from hot path %s reaches %s at %s (via %s)",
				fn.Name(), w.f.what, pass.Fset().Position(w.f.leafPos), strings.Join(w.route, " → "))
			if extra := len(facts) - 1; extra > 0 {
				msg += fmt.Sprintf(" and %d more blocking operation(s)", extra)
			}
			reps = append(reps, rep{pos: site.Call.Pos(), msg: msg + "; per-message paths must stay lock- and wait-free"})
		}
		sort.SliceStable(reps, func(i, j int) bool { return reps[i].pos < reps[j].pos })
		for _, r := range reps {
			pass.Reportf(r.pos, "%s", r.msg)
		}
	}
}

// directBlockingOps finds the blocking operations in fn's own body (not in
// nested literals — those are their own Funcs).
func directBlockingOps(fn *Func) []blockFact {
	if fn.CFG == nil {
		return nil
	}
	info := fn.Pkg.Info

	// Comm statements of selects that have a default are non-blocking.
	nonBlocking := map[ast.Node]bool{}
	// Selects themselves: with default → non-blocking; without → one
	// blocking fact for the whole statement (comms not double-counted).
	selectHandled := map[ast.Node]bool{}
	var facts []blockFact
	add := func(what string, pos token.Pos) {
		facts = append(facts, blockFact{what: what, leafPos: pos})
	}

	// First pass over CFG nodes: find select shapes. Select comm statements
	// are emitted into select.comm blocks, so classify via the statements'
	// enclosing select by scanning the syntax.
	ast.Inspect(fn.Body(), func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if hasDefault {
				nonBlocking[cc.Comm] = true
				switch s := cc.Comm.(type) {
				case *ast.ExprStmt:
					nonBlocking[ast.Unparen(s.X)] = true
				case *ast.AssignStmt:
					for _, r := range s.Rhs {
						nonBlocking[ast.Unparen(r)] = true
					}
				case *ast.SendStmt:
					nonBlocking[s] = true
				}
			} else {
				// The select blocks as a unit; mark comms handled so the
				// generic send/recv matcher below skips them.
				selectHandled[cc.Comm] = true
				switch s := cc.Comm.(type) {
				case *ast.ExprStmt:
					selectHandled[ast.Unparen(s.X)] = true
				case *ast.AssignStmt:
					for _, r := range s.Rhs {
						selectHandled[ast.Unparen(r)] = true
					}
				}
			}
		}
		if !hasDefault {
			add("select without default", sel.Pos())
		}
		return true
	})

	// Range-over-channel: the CFG emits only the range expression, so detect
	// the statement shape on the syntax.
	ast.Inspect(fn.Body(), func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.RangeStmt); ok {
			if t := info.TypeOf(r.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					add("range over channel", r.X.Pos())
				}
			}
		}
		return true
	})

	// `go` statements are skipped (their call runs on the new goroutine's
	// stack); deferred statements stay in (they run before the hot frame
	// returns, e.g. defer wg.Wait()).
	skipGo := func(n ast.Node) bool { _, ok := n.(*ast.GoStmt); return ok }
	visitBlockNodes(fn, skipGo, func(n ast.Node) {
		if nonBlocking[n] || selectHandled[n] {
			return
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			add("channel send", x.Arrow)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				add("channel receive", x.OpPos)
			}
		case *ast.CallExpr:
			if class, name, op, pos := lockAcquisition(fn.Pkg, x); class != nil && (op == "Lock" || op == "RLock") {
				add(fmt.Sprintf("%s.%s()", name, op), pos)
				return
			}
			if what, ok := blockingStdlibCall(info, x); ok {
				add(what, x.Pos())
			}
		}
	})
	return facts
}

// blockingStdlibCall classifies a call to a non-module function as blocking:
// time.Sleep, sync waits, and I/O-performing stdlib packages.
func blockingStdlibCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	var obj *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj, _ = sel.Obj().(*types.Func)
		} else if o, ok := info.Uses[fun.Sel].(*types.Func); ok {
			obj = o
		}
	case *ast.Ident:
		obj, _ = info.Uses[fun].(*types.Func)
	}
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	pkg := obj.Pkg().Path()
	name := obj.Name()
	switch {
	case pkg == "time" && name == "Sleep":
		return "time.Sleep", true
	case pkg == "sync" && name == "Wait":
		return "sync." + recvTypeName(obj) + ".Wait", true
	case pkg == "os" || pkg == "net" || pkg == "syscall" || pkg == "bufio" ||
		pkg == "io" || strings.HasPrefix(pkg, "net/") || strings.HasPrefix(pkg, "os/") ||
		strings.HasPrefix(pkg, "io/"):
		return "I/O call " + pkg + "." + name, true
	case (pkg == "fmt" || pkg == "log") &&
		(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic") ||
			name == "Output"):
		return "I/O call " + pkg + "." + name, true
	}
	return "", false
}

func recvTypeName(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

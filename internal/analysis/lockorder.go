package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the repo-wide mutex acquisition-order graph and reports
// cycles — the static shape of a potential deadlock. Where lock-discipline
// (PR 4) checks one function body at a time, this analyzer is
// interprocedural: a function's summary is the set of lock classes it may
// acquire (directly or through callees), and an edge A→B is recorded
// whenever a CFG path acquires B — or calls a function whose summary
// acquires B — while A is held. Two threads taking A→B and B→A in opposite
// orders can deadlock even though each order looks locally innocent, which
// is exactly the cross-package bug (container ↔ kv ↔ kafka commit paths) an
// intraprocedural rule cannot see.
//
// A lock class is the field or variable a Lock/RLock call resolves to —
// "(*kafka.partition).mu", not one runtime instance — so the graph is
// finite. Self-edges (A while A) are not reported: distinct instances of
// one class (two partitions, two stores) may be locked in sequence
// legitimately, and instance identity is not decidable statically.
// Goroutine spawns sever the held-set (the spawned body starts lock-free);
// deferred unlocks keep the lock held to function exit, which is the
// conservative direction for ordering.
var LockOrder = &Analyzer{
	Name: "lock-order",
	Doc: "the module-wide mutex acquisition graph (computed over CFG paths and the call graph) " +
		"must be acyclic; a cycle means two goroutines can deadlock by taking the same locks " +
		"in opposite orders — both acquisition stacks are reported",
	RunProgram: runLockOrder,
}

// lockClassKey identifies a lock class: the types.Object of the field,
// package-level var, or local var the Lock call resolves to.
type lockClassKey = types.Object

// lockAcq is one witnessed acquisition of a class: where, in which
// function, and through which call chain (empty for direct acquisitions).
type lockAcq struct {
	class lockClassKey
	name  string // printable class name
	pos   token.Pos
	fn    *Func
	chain []string // call chain from fn to the acquiring function
}

// lockSummary is a function's fixpoint fact: every lock class the function
// may acquire, transitively, with one witness each.
type lockSummary struct {
	acquires map[lockClassKey]lockAcq
}

// lockEdge is one acquisition-order edge with witnesses for both ends:
// fromAcq explains how the held lock was taken (position where it was
// held), acq explains how the second lock is acquired under it.
type lockEdge struct {
	from, to lockClassKey
	fromName string
	toName   string
	heldAt   token.Pos // where `from` was locked on the witnessing path
	fn       *Func     // function on whose path the edge was observed
	acq      lockAcq   // acquisition of `to` under `from`
}

func runLockOrder(pass *Pass) {
	prog := pass.Prog
	g := prog.Graph

	// Fixpoint: per-function may-acquire summaries. Deferred and go'd
	// statements are excluded: a goroutine acquires on its own stack, and a
	// deferred op is not an acquisition the caller observes mid-body.
	store := g.Fixpoint(func(fn *Func, get func(*Func) Fact) Fact {
		sum := &lockSummary{acquires: map[lockClassKey]lockAcq{}}
		visitBlockNodes(fn, skipDeferAndGo, func(n ast.Node) {
			if class, name, op, pos := lockAcquisition(fn.Pkg, n); class != nil && isAcquireOp(op) {
				if _, ok := sum.acquires[class]; !ok {
					sum.acquires[class] = lockAcq{class: class, name: name, pos: pos, fn: fn}
				}
			}
		})
		for _, site := range g.Sites[fn] {
			if site.Go {
				continue // a goroutine's locks are taken on its own stack
			}
			for _, callee := range site.Callees {
				cs, _ := get(callee).(*lockSummary)
				if cs == nil {
					continue
				}
				for class, acq := range cs.acquires {
					if _, ok := sum.acquires[class]; ok {
						continue
					}
					chain := append([]string{callee.Name()}, acq.chain...)
					sum.acquires[class] = lockAcq{
						class: class, name: acq.name,
						pos: site.Call.Pos(), fn: fn, chain: chain,
					}
				}
			}
		}
		return sum
	}, func(old, new Fact) bool {
		os, _ := old.(*lockSummary)
		ns, _ := new.(*lockSummary)
		if os == nil || ns == nil {
			return os == ns
		}
		if len(os.acquires) != len(ns.acquires) {
			return false
		}
		for k := range ns.acquires {
			if _, ok := os.acquires[k]; !ok {
				return false
			}
		}
		return true
	})

	// Edge collection: forward may-hold dataflow over each function's CFG.
	edges := map[[2]lockClassKey]lockEdge{}
	addEdge := func(e lockEdge) {
		if e.from == e.to {
			return
		}
		key := [2]lockClassKey{e.from, e.to}
		if have, ok := edges[key]; !ok || e.acq.pos < have.acq.pos {
			edges[key] = e
		}
	}
	for _, fn := range g.Funcs {
		collectLockEdges(fn, g, store, addEdge)
	}

	reportLockCycles(pass, edges)
}

// heldLock tracks one held lock class and where it was acquired on the
// current path.
type heldLock struct {
	class lockClassKey
	name  string
	pos   token.Pos
}

// collectLockEdges runs a union (may-hold) dataflow over fn's CFG and emits
// an edge for every acquisition — direct or via callee summary — performed
// while another class is held.
func collectLockEdges(fn *Func, g *CallGraph, store *FactStore, addEdge func(lockEdge)) {
	cfg := fn.CFG
	if cfg == nil {
		return
	}
	sites := g.Sites[fn]
	siteAt := map[*ast.CallExpr]*CallSite{}
	for _, s := range sites {
		siteAt[s.Call] = s
	}

	// in[b]: set of held locks on entry, union over predecessors.
	in := make([]map[lockClassKey]heldLock, len(cfg.Blocks))

	changed := true
	for round := 0; changed && round < len(cfg.Blocks)+2; round++ {
		changed = false
		for _, blk := range cfg.Blocks {
			state := map[lockClassKey]heldLock{}
			for k, v := range in[blk.Index] {
				state[k] = v
			}
			out := applyLockBlock(fn, blk, state, siteAt, store, nil)
			for _, succ := range blk.Succs {
				tgt := in[succ.Index]
				if tgt == nil {
					tgt = map[lockClassKey]heldLock{}
					in[succ.Index] = tgt
				}
				for k, v := range out {
					if _, ok := tgt[k]; !ok {
						tgt[k] = v
						changed = true
					}
				}
			}
		}
	}
	// Final emit pass with stable entry states.
	for _, blk := range cfg.Blocks {
		state := map[lockClassKey]heldLock{}
		for k, v := range in[blk.Index] {
			state[k] = v
		}
		applyLockBlock(fn, blk, state, siteAt, store, addEdge)
	}
}

// applyLockBlock interprets one block's nodes over a held-lock state,
// optionally emitting acquisition-order edges, and returns the exit state.
func applyLockBlock(fn *Func, blk *Block, state map[lockClassKey]heldLock, siteAt map[*ast.CallExpr]*CallSite, store *FactStore, addEdge func(lockEdge)) map[lockClassKey]heldLock {
	for _, node := range blk.Nodes {
		// A deferred unlock releases at exit, not here — treating it as an
		// immediate unlock would hide every lock-while-held edge in the
		// common Lock-then-defer-Unlock shape. A go statement's operations
		// run on another stack entirely.
		if skipDeferAndGo(node) {
			continue
		}
		walkNodeShallow(node, func(n ast.Node) {
			// Call sites: edges from every held lock to every class the
			// callee may acquire.
			if call, ok := n.(*ast.CallExpr); ok {
				if site := siteAt[call]; site != nil && !site.Go && addEdge != nil && len(state) > 0 {
					for _, callee := range site.Callees {
						cs, _ := store.Get(callee).(*lockSummary)
						if cs == nil {
							continue
						}
						for class, acq := range cs.acquires {
							for _, held := range state {
								addEdge(lockEdge{
									from: held.class, to: class,
									fromName: held.name, toName: acq.name,
									heldAt: held.pos, fn: fn,
									acq: lockAcq{
										class: class, name: acq.name, pos: call.Pos(), fn: fn,
										chain: append([]string{callee.Name()}, acq.chain...),
									},
								})
							}
						}
					}
				}
			}
			class, name, op, pos := lockAcquisition(fn.Pkg, n)
			if class == nil {
				return
			}
			switch {
			case isAcquireOp(op):
				if addEdge != nil {
					for _, held := range state {
						addEdge(lockEdge{
							from: held.class, to: class,
							fromName: held.name, toName: name,
							heldAt: held.pos, fn: fn,
							acq: lockAcq{class: class, name: name, pos: pos, fn: fn},
						})
					}
				}
				state[class] = heldLock{class: class, name: name, pos: pos}
			default: // Unlock/RUnlock
				delete(state, class)
			}
		})
	}
	return state
}

// walkNodeShallow visits n and its subexpressions in source order, skipping
// function literal bodies (they are separate functions).
func walkNodeShallow(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if x != nil {
			visit(x)
		}
		return true
	})
}

func isAcquireOp(op string) bool {
	return op == "Lock" || op == "RLock" || op == "TryLock" || op == "TryRLock"
}

// lockAcquisition matches n as a Lock/RLock/Unlock/RUnlock call on a sync
// primitive and resolves its lock class. Returns a nil class otherwise.
func lockAcquisition(pkg *Package, n ast.Node) (lockClassKey, string, string, token.Pos) {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil, "", "", token.NoPos
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", "", token.NoPos
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return nil, "", "", token.NoPos
	}
	// Receiver must be (or embed) a sync lock.
	recvType := pkg.Info.TypeOf(sel.X)
	if recvType == nil {
		return nil, "", "", token.NoPos
	}
	if ptr, ok := recvType.(*types.Pointer); ok {
		recvType = ptr.Elem()
	}
	if lockKind(recvType) == "" {
		return nil, "", "", token.NoPos
	}
	class, name := lockClassOf(pkg, sel.X)
	if class == nil {
		return nil, "", "", token.NoPos
	}
	return class, name, op, call.Pos()
}

// lockClassOf resolves the expression a Lock call's receiver denotes to a
// class object: a struct field ("(*kafka.Consumer).mu" for any instance), a
// package-level variable, or — weakest — a local variable.
func lockClassOf(pkg *Package, e ast.Expr) (lockClassKey, string) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			field, ok := sel.Obj().(*types.Var)
			if !ok {
				return nil, ""
			}
			return field, fieldClassName(sel.Recv(), field)
		}
		// Qualified identifier: pkg.GlobalMu.
		if obj, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return obj, objClassName(obj)
		}
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[x].(*types.Var); ok {
			// A lock embedded in a method receiver used as `c.Lock()` comes
			// through as the receiver ident; classify by its type instead of
			// the per-instance variable when the type is named.
			if named, ok := derefType(obj.Type()).(*types.Named); ok && lockKind(named) != "" {
				return named.Obj(), typeDisplayName(named)
			}
			return obj, objClassName(obj)
		}
	case *ast.StarExpr:
		return lockClassOf(pkg, x.X)
	case *ast.IndexExpr:
		return lockClassOf(pkg, x.X)
	}
	return nil, ""
}

func fieldClassName(recv types.Type, field *types.Var) string {
	return typeDisplayName(recv) + "." + field.Name()
}

func objClassName(v *types.Var) string {
	if v.Pkg() != nil {
		short := v.Pkg().Path()
		if i := strings.LastIndex(short, "/"); i >= 0 {
			short = short[i+1:]
		}
		return short + "." + v.Name()
	}
	return v.Name()
}

func typeDisplayName(t types.Type) string {
	ptr := false
	if p, ok := t.(*types.Pointer); ok {
		ptr = true
		t = p.Elem()
	}
	name := "?"
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		short := ""
		if obj.Pkg() != nil {
			short = obj.Pkg().Path()
			if i := strings.LastIndex(short, "/"); i >= 0 {
				short = short[i+1:]
			}
			short += "."
		}
		name = short + obj.Name()
	} else {
		name = t.String()
	}
	if ptr {
		return "(*" + name + ")"
	}
	return "(" + name + ")"
}

// reportLockCycles finds strongly connected components of the acquisition
// graph and reports one diagnostic per cyclic component, with both
// acquisition stacks.
func reportLockCycles(pass *Pass, edges map[[2]lockClassKey]lockEdge) {
	// Adjacency over classes.
	adj := map[lockClassKey][]lockClassKey{}
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	for _, succs := range adj {
		sort.Slice(succs, func(i, j int) bool { return succs[i].Pos() < succs[j].Pos() })
	}

	// For every edge A→B, look for a return path B→…→A; the pair of
	// witnesses is the deadlock candidate. Deduplicate by unordered class
	// pair so each cycle reports once, at the earliest-position witness
	// (iteration over the position-sorted keys keeps that deterministic).
	keys := make([][2]lockClassKey, 0, len(edges))
	for key := range edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return edges[keys[i]].acq.pos < edges[keys[j]].acq.pos })
	type pairKey [2]lockClassKey
	seen := map[pairKey]bool{}
	var reports []lockEdge
	var returns []lockEdge
	for _, key := range keys {
		e := edges[key]
		path := findLockPath(adj, key[1], key[0])
		if path == nil {
			continue
		}
		// Normalize the unordered pair.
		pk := pairKey{key[0], key[1]}
		if pk[1].Pos() < pk[0].Pos() {
			pk[0], pk[1] = pk[1], pk[0]
		}
		if seen[pk] {
			continue
		}
		seen[pk] = true
		// The witness for the return direction: the first edge on the path.
		back := edges[[2]lockClassKey{path[0], path[1]}]
		reports = append(reports, e)
		returns = append(returns, back)
	}
	order := make([]int, len(reports))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return reports[order[i]].acq.pos < reports[order[j]].acq.pos })
	for _, i := range order {
		e, back := reports[i], returns[i]
		pass.Reportf(e.acq.pos,
			"lock order cycle (potential deadlock): %s is acquired while %s is held (%s), but %s is acquired while %s is held in %s at %s; one consistent order is required",
			e.toName, e.fromName, lockStackString(pass, e),
			back.toName, back.fromName, back.fn.Name(), pass.Fset().Position(back.acq.pos))
	}
}

// lockStackString renders one edge's acquisition stack: holder position and
// the call chain reaching the second acquisition.
func lockStackString(pass *Pass, e lockEdge) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s locked at %s in %s", e.fromName, pass.Fset().Position(e.heldAt), e.fn.Name())
	if len(e.acq.chain) > 0 {
		fmt.Fprintf(&sb, "; %s via %s", e.toName, strings.Join(e.acq.chain, " → "))
	}
	return sb.String()
}

// findLockPath returns a shortest node path from src to dst in adj
// (inclusive of both ends), or nil.
func findLockPath(adj map[lockClassKey][]lockClassKey, src, dst lockClassKey) []lockClassKey {
	type qe struct {
		node lockClassKey
		prev int
	}
	queue := []qe{{node: src, prev: -1}}
	visited := map[lockClassKey]bool{src: true}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		if cur.node == dst {
			var rev []lockClassKey
			for j := i; j != -1; j = queue[j].prev {
				rev = append(rev, queue[j].node)
			}
			path := make([]lockClassKey, 0, len(rev))
			for j := len(rev) - 1; j >= 0; j-- {
				path = append(path, rev[j])
			}
			return path
		}
		for _, next := range adj[cur.node] {
			if !visited[next] {
				visited[next] = true
				queue = append(queue, qe{node: next, prev: i})
			}
		}
	}
	return nil
}

// walkLockNodes visits every CFG node of fn shallowly (no literal bodies).
func walkLockNodes(fn *Func, visit func(ast.Node)) {
	visitBlockNodes(fn, nil, visit)
}

// visitBlockNodes visits fn's CFG nodes shallowly (never entering function
// literals), skipping top-level nodes for which skip returns true.
func visitBlockNodes(fn *Func, skip func(ast.Node) bool, visit func(ast.Node)) {
	if fn.CFG == nil {
		return
	}
	for _, blk := range fn.CFG.Blocks {
		for _, node := range blk.Nodes {
			if skip != nil && skip(node) {
				continue
			}
			walkNodeShallow(node, visit)
		}
	}
}

// skipDeferAndGo filters defer and go statements out of a block-node walk.
func skipDeferAndGo(n ast.Node) bool {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return true
	}
	return false
}

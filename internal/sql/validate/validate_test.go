package validate

import (
	"strings"
	"testing"

	"samzasql/internal/sql/ast"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/parser"
	"samzasql/internal/sql/types"
)

// paperCatalog builds the example schema of §3.2: Orders/Packets/Bids/Asks
// streams and Products/Suppliers tables.
func paperCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	define := func(o *catalog.Object) {
		if err := cat.Define(o); err != nil {
			t.Fatal(err)
		}
	}
	define(&catalog.Object{
		Kind: catalog.Stream, Name: "Orders", Topic: "orders", TimestampCol: "rowtime",
		Row: types.NewRowType(
			types.Column{Name: "rowtime", Type: types.Timestamp},
			types.Column{Name: "productId", Type: types.Bigint},
			types.Column{Name: "orderId", Type: types.Bigint},
			types.Column{Name: "units", Type: types.Bigint},
		),
	})
	define(&catalog.Object{
		Kind: catalog.Table, Name: "Products", Topic: "products-changelog",
		Row: types.NewRowType(
			types.Column{Name: "productId", Type: types.Bigint},
			types.Column{Name: "name", Type: types.Varchar},
			types.Column{Name: "supplierId", Type: types.Bigint},
		),
	})
	define(&catalog.Object{
		Kind: catalog.Table, Name: "Suppliers", Topic: "suppliers-changelog",
		Row: types.NewRowType(
			types.Column{Name: "supplierId", Type: types.Bigint},
			types.Column{Name: "name", Type: types.Varchar},
			types.Column{Name: "location", Type: types.Varchar},
		),
	})
	for _, p := range []string{"PacketsR1", "PacketsR2"} {
		define(&catalog.Object{
			Kind: catalog.Stream, Name: p, Topic: strings.ToLower(p), TimestampCol: "rowtime",
			Row: types.NewRowType(
				types.Column{Name: "rowtime", Type: types.Timestamp},
				types.Column{Name: "sourcetime", Type: types.Timestamp},
				types.Column{Name: "packetId", Type: types.Bigint},
			),
		})
	}
	return cat
}

func validateQuery(t *testing.T, src string) (*Result, error) {
	t.Helper()
	stmt, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return New(paperCatalog(t)).Validate(stmt)
}

func mustValidate(t *testing.T, src string) *Result {
	t.Helper()
	res, err := validateQuery(t, src)
	if err != nil {
		t.Fatalf("validate %q: %v", src, err)
	}
	return res
}

func TestSelectStreamStar(t *testing.T) {
	res := mustValidate(t, "SELECT STREAM * FROM Orders")
	b := res.Root
	if !b.Streaming || b.Grouped() {
		t.Fatalf("flags: streaming=%v grouped=%v", b.Streaming, b.Grouped())
	}
	if b.Output.Arity() != 4 || b.Output.Columns[0].Name != "rowtime" {
		t.Fatalf("output %v", b.Output)
	}
	if b.TimestampIdx != 0 {
		t.Fatalf("ts idx %d", b.TimestampIdx)
	}
}

func TestFilterProjection(t *testing.T) {
	res := mustValidate(t, "SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 25")
	b := res.Root
	if b.Where == nil || b.Where.Type() != types.Boolean {
		t.Fatalf("where %v", b.Where)
	}
	if b.Output.Arity() != 3 {
		t.Fatalf("output %v", b.Output)
	}
}

func TestNonStreamQueryOverStream(t *testing.T) {
	// Absence of STREAM makes it a bounded historical query (§3.3).
	res := mustValidate(t, "SELECT * FROM Orders WHERE units > 25")
	if res.Root.Streaming {
		t.Fatal("non-STREAM query marked streaming")
	}
}

func TestStreamOverTableRejected(t *testing.T) {
	_, err := validateQuery(t, "SELECT STREAM * FROM Products")
	if err == nil || !strings.Contains(err.Error(), "stream") {
		t.Fatalf("err %v", err)
	}
}

func TestTumbleWindow(t *testing.T) {
	res := mustValidate(t, `
		SELECT STREAM START(rowtime), COUNT(*)
		FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)`)
	b := res.Root
	if b.Window == nil || b.Window.Kind != WindowTumble {
		t.Fatalf("window %+v", b.Window)
	}
	if b.Window.EmitMillis != 3600_000 || b.Window.RetainMillis != 3600_000 {
		t.Fatalf("window %+v", b.Window)
	}
	if len(b.Aggs) != 2 {
		t.Fatalf("aggs %v", b.Aggs)
	}
	if b.Aggs[0].Fn != "START" || b.Aggs[1].Fn != "COUNT" {
		t.Fatalf("agg fns %s %s", b.Aggs[0].Fn, b.Aggs[1].Fn)
	}
	if b.Output.Columns[0].Type != types.Timestamp {
		t.Fatalf("START type %v", b.Output.Columns[0].Type)
	}
	if b.TimestampIdx != 0 {
		t.Fatalf("ts idx %d", b.TimestampIdx)
	}
}

func TestHopWindowWithAlignment(t *testing.T) {
	res := mustValidate(t, `
		SELECT STREAM START(rowtime), COUNT(*)
		FROM Orders GROUP BY HOP(rowtime,
		  INTERVAL '1:30' HOUR TO MINUTE, INTERVAL '2' HOUR, TIME '0:30')`)
	w := res.Root.Window
	if w.Kind != WindowHop || w.EmitMillis != 90*60000 || w.RetainMillis != 7200_000 || w.AlignMillis != 30*60000 {
		t.Fatalf("window %+v", w)
	}
}

func TestGroupByKeysAndHaving(t *testing.T) {
	res := mustValidate(t, `
		SELECT STREAM FLOOR(rowtime TO HOUR), productId, COUNT(*), SUM(units)
		FROM Orders
		GROUP BY FLOOR(rowtime TO HOUR), productId
		HAVING COUNT(*) > 2 OR SUM(units) > 10`)
	b := res.Root
	if len(b.GroupKeys) != 2 || len(b.Aggs) != 2 {
		t.Fatalf("keys %d aggs %d", len(b.GroupKeys), len(b.Aggs))
	}
	if b.Having == nil {
		t.Fatal("HAVING lost")
	}
	// COUNT(*) reused between SELECT and HAVING.
	if b.Aggs[0].Fn != "COUNT" || b.Aggs[1].Fn != "SUM" {
		t.Fatalf("aggs %v %v", b.Aggs[0].Fn, b.Aggs[1].Fn)
	}
	// Output: floor(ts) is a Timestamp key.
	if b.Output.Columns[0].Type != types.Timestamp || b.TimestampIdx != 0 {
		t.Fatalf("output %v tsIdx=%d", b.Output, b.TimestampIdx)
	}
}

func TestUngroupedColumnRejected(t *testing.T) {
	_, err := validateQuery(t, "SELECT productId, orderId, COUNT(*) FROM Orders GROUP BY productId")
	if err == nil || !strings.Contains(err.Error(), "GROUP BY") {
		t.Fatalf("err %v", err)
	}
}

func TestAggregateInWhereRejected(t *testing.T) {
	_, err := validateQuery(t, "SELECT productId FROM Orders WHERE SUM(units) > 5 GROUP BY productId")
	if err == nil || !strings.Contains(err.Error(), "WHERE") {
		t.Fatalf("err %v", err)
	}
}

func TestSlidingWindowAnalytic(t *testing.T) {
	res := mustValidate(t, `
		SELECT STREAM rowtime, productId, units,
		  SUM(units) OVER (PARTITION BY productId ORDER BY rowtime
		    RANGE INTERVAL '1' HOUR PRECEDING) unitsLastHour
		FROM Orders`)
	b := res.Root
	if len(b.Analytics) != 1 {
		t.Fatalf("analytics %v", b.Analytics)
	}
	an := b.Analytics[0]
	if an.Fn != "SUM" || an.IsRows || an.FrameMillis != 3600_000 || len(an.PartitionBy) != 1 {
		t.Fatalf("analytic %+v", an)
	}
	if b.Output.Arity() != 4 || b.Output.Columns[3].Name != "unitsLastHour" {
		t.Fatalf("output %v", b.Output)
	}
}

func TestRowsFrame(t *testing.T) {
	res := mustValidate(t, `
		SELECT STREAM rowtime, SUM(units) OVER (PARTITION BY productId
		  ORDER BY rowtime ROWS 10 PRECEDING) s
		FROM Orders`)
	an := res.Root.Analytics[0]
	if !an.IsRows || an.FrameRows != 10 {
		t.Fatalf("analytic %+v", an)
	}
}

func TestAnalyticFrameRequired(t *testing.T) {
	_, err := validateQuery(t, "SELECT STREAM SUM(units) OVER (PARTITION BY productId ORDER BY rowtime) FROM Orders")
	if err == nil || !strings.Contains(err.Error(), "frame") {
		t.Fatalf("err %v", err)
	}
}

func TestRangeFrameRequiresTimestampOrder(t *testing.T) {
	_, err := validateQuery(t, `
		SELECT STREAM SUM(units) OVER (ORDER BY productId
		  RANGE INTERVAL '1' HOUR PRECEDING) FROM Orders`)
	if err == nil || !strings.Contains(err.Error(), "TIMESTAMP") {
		t.Fatalf("err %v", err)
	}
}

func TestStreamToRelationJoin(t *testing.T) {
	res := mustValidate(t, `
		SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId,
		  Orders.units, Products.supplierId
		FROM Orders JOIN Products ON Orders.productId = Products.productId`)
	b := res.Root
	if b.Join == nil {
		t.Fatal("join info missing")
	}
	if b.Join.LeftKey == nil || b.Join.RightKey == nil {
		t.Fatal("equi keys not extracted")
	}
	if b.Join.WindowMillis != 0 {
		t.Fatalf("relation join has window %d", b.Join.WindowMillis)
	}
	if b.Output.Arity() != 5 {
		t.Fatalf("output %v", b.Output)
	}
}

func TestStreamToStreamJoinListing7(t *testing.T) {
	res := mustValidate(t, `
		SELECT STREAM
		  GREATEST(PacketsR1.rowtime, PacketsR2.rowtime) AS rowtime,
		  PacketsR1.sourcetime, PacketsR1.packetId,
		  PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel
		FROM PacketsR1 JOIN PacketsR2 ON
		  PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND
		    AND PacketsR2.rowtime + INTERVAL '2' SECOND
		  AND PacketsR1.packetId = PacketsR2.packetId`)
	b := res.Root
	if b.Join.WindowMillis != 2000 {
		t.Fatalf("join window %d", b.Join.WindowMillis)
	}
	if b.Join.LeftKey == nil {
		t.Fatal("equi key missing")
	}
	// GREATEST of two timestamps is the output rowtime.
	if b.Output.Columns[0].Type != types.Timestamp || b.TimestampIdx != 0 {
		t.Fatalf("output %v", b.Output)
	}
	// Timestamp difference is an interval.
	if b.Output.Columns[3].Type != types.Interval {
		t.Fatalf("timeToTravel type %v", b.Output.Columns[3].Type)
	}
}

func TestStreamJoinWithoutWindowRejected(t *testing.T) {
	_, err := validateQuery(t, `
		SELECT STREAM PacketsR1.packetId
		FROM PacketsR1 JOIN PacketsR2
		ON PacketsR1.packetId = PacketsR2.packetId`)
	if err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("err %v", err)
	}
}

func TestStreamJoinWithoutEquiKeyRejected(t *testing.T) {
	_, err := validateQuery(t, `
		SELECT STREAM PacketsR1.packetId
		FROM PacketsR1 JOIN PacketsR2
		ON PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND
		  AND PacketsR2.rowtime + INTERVAL '2' SECOND`)
	if err == nil || !strings.Contains(err.Error(), "equality") {
		t.Fatalf("err %v", err)
	}
}

func TestSubqueryAndStreamDiscardWarning(t *testing.T) {
	res := mustValidate(t, `
		SELECT STREAM rowtime, productId
		FROM (SELECT STREAM rowtime, productId, units FROM Orders) WHERE units > 5`)
	if len(res.Warnings) == 0 || !strings.Contains(res.Warnings[0], "discarded") {
		t.Fatalf("warnings %v", res.Warnings)
	}
	if res.Root.Output.Arity() != 2 {
		t.Fatalf("output %v", res.Root.Output)
	}
}

func TestGroupedSubquery(t *testing.T) {
	res := mustValidate(t, `
		SELECT STREAM rowtime, productId
		FROM (
		  SELECT FLOOR(rowtime TO HOUR) AS rowtime, productId,
		    COUNT(*) AS c, SUM(units) AS su
		  FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId)
		WHERE c > 2 OR su > 10`)
	b := res.Root
	sub := b.Scope.Rels[0].Sub
	if sub == nil || !sub.Grouped() {
		t.Fatal("subquery not grouped")
	}
	if b.Output.Arity() != 2 {
		t.Fatalf("output %v", b.Output)
	}
}

func TestCreateView(t *testing.T) {
	res := mustValidate(t, `
		CREATE VIEW HourlyOrderTotals (rowtime, productId, c, su) AS
		SELECT FLOOR(rowtime TO HOUR), productId, COUNT(*), SUM(units)
		FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId`)
	if res.View == nil {
		t.Fatal("view marker missing")
	}
	out := res.Root.Output
	if out.Columns[2].Name != "c" || out.Columns[3].Name != "su" {
		t.Fatalf("view columns %v", out)
	}
}

func TestViewExpansion(t *testing.T) {
	cat := paperCatalog(t)
	viewStmt, err := parser.Parse(`
		CREATE VIEW HourlyOrderTotals (rowtime, productId, c, su) AS
		SELECT FLOOR(rowtime TO HOUR), productId, COUNT(*), SUM(units)
		FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId`)
	if err != nil {
		t.Fatal(err)
	}
	v := New(cat)
	res, err := v.Validate(viewStmt)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Define(&catalog.Object{
		Kind: catalog.View,
		Name: res.View.Name,
		Row:  res.Root.Output,
		Def:  res.View.Select,
	}); err != nil {
		t.Fatal(err)
	}
	q, err := parser.Parse("SELECT STREAM rowtime, productId FROM HourlyOrderTotals WHERE c > 2 OR su > 10")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := v.Validate(q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Root.Output.Arity() != 2 {
		t.Fatalf("output %v", res2.Root.Output)
	}
	if !res2.Root.Streaming {
		t.Fatal("query over stream-backed view should be streamable")
	}
}

func TestInsertInto(t *testing.T) {
	res := mustValidate(t, "INSERT INTO Orders SELECT STREAM * FROM Orders WHERE units > 100")
	if res.InsertTarget != "Orders" {
		t.Fatalf("target %q", res.InsertTarget)
	}
	_, err := validateQuery(t, "INSERT INTO Orders SELECT STREAM rowtime FROM Orders")
	if err == nil || !strings.Contains(err.Error(), "columns") {
		t.Fatalf("arity mismatch: %v", err)
	}
}

func TestTimestampWarningOnProjection(t *testing.T) {
	res := mustValidate(t, "SELECT STREAM productId, units FROM Orders")
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "timestamp") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing timestamp warning: %v", res.Warnings)
	}
	if res.Root.TimestampIdx != -1 {
		t.Fatalf("ts idx %d", res.Root.TimestampIdx)
	}
}

func TestWindowOverDerivedStreamWithoutTimestampRejected(t *testing.T) {
	// The §7 scenario: projection drops rowtime, then a window query on the
	// derived stream must fail.
	_, err := validateQuery(t, `
		SELECT STREAM COUNT(*) FROM
		  (SELECT productId, units FROM Orders)
		GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)`)
	if err == nil {
		t.Fatal("window over timestamp-less derived stream accepted")
	}
}

func TestUnknownColumnAndTable(t *testing.T) {
	for _, q := range []string{
		"SELECT STREAM nope FROM Orders",
		"SELECT STREAM rowtime FROM Missing",
		"SELECT STREAM Orders.rowtime FROM Orders AS o", // stale qualifier
		"SELECT STREAM o.nope FROM Orders AS o",
	} {
		if _, err := validateQuery(t, q); err == nil {
			t.Errorf("validate(%q) succeeded", q)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	_, err := validateQuery(t, `
		SELECT name FROM Products JOIN Suppliers
		ON Products.supplierId = Suppliers.supplierId`)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err %v", err)
	}
}

func TestTypeErrors(t *testing.T) {
	for _, q := range []string{
		"SELECT STREAM * FROM Orders WHERE units + 'x' > 1",
		"SELECT STREAM * FROM Orders WHERE units",   // non-boolean WHERE
		"SELECT STREAM units LIKE 'x%' FROM Orders", // LIKE over BIGINT
		"SELECT STREAM NOT units FROM Orders",       // NOT over BIGINT
		"SELECT STREAM FLOOR(name TO HOUR) FROM Orders",
	} {
		if _, err := validateQuery(t, q); err == nil {
			t.Errorf("validate(%q) succeeded", q)
		}
	}
}

func TestDistinctStreamingRejected(t *testing.T) {
	_, err := validateQuery(t, "SELECT DISTINCT productId FROM Orders")
	if err != nil {
		t.Fatalf("table-mode DISTINCT should validate: %v", err)
	}
	_, err = validateQuery(t, "SELECT STREAM DISTINCT productId FROM Orders")
	if err == nil || !strings.Contains(err.Error(), "DISTINCT") {
		t.Fatalf("err %v", err)
	}
}

func TestImplicitSingleGroup(t *testing.T) {
	res := mustValidate(t, "SELECT COUNT(*), SUM(units) FROM Orders")
	b := res.Root
	if !b.Grouped() || len(b.GroupKeys) != 0 || len(b.Aggs) != 2 {
		t.Fatalf("keys %d aggs %d", len(b.GroupKeys), len(b.Aggs))
	}
}

func TestStartWithoutWindowRejected(t *testing.T) {
	_, err := validateQuery(t, "SELECT START(rowtime) FROM Orders GROUP BY productId")
	if err == nil || !strings.Contains(err.Error(), "HOP or TUMBLE") {
		t.Fatalf("err %v", err)
	}
}

func TestJoinKindRestrictions(t *testing.T) {
	_, err := validateQuery(t, `
		SELECT STREAM Orders.rowtime FROM Orders
		LEFT JOIN Products ON Orders.productId = Products.productId`)
	if err == nil || !strings.Contains(err.Error(), "INNER") {
		t.Fatalf("err %v", err)
	}
}

func TestQualifiedStar(t *testing.T) {
	res := mustValidate(t, `
		SELECT STREAM o.*, Products.supplierId
		FROM Orders o JOIN Products ON o.productId = Products.productId`)
	if res.Root.Output.Arity() != 5 {
		t.Fatalf("output %v", res.Root.Output)
	}
}

var _ = ast.InnerJoin // keep ast imported for helper visibility

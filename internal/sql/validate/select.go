package validate

import (
	"fmt"
	"strings"

	"samzasql/internal/sql/ast"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/types"
	"samzasql/internal/sql/udf"
)

// GroupWindowKind classifies the GROUP BY window function (§3.6).
type GroupWindowKind int

// Group window kinds.
const (
	// WindowNone means plain (or no) grouping.
	WindowNone GroupWindowKind = iota
	// WindowTumble emits complete, non-overlapping windows.
	WindowTumble
	// WindowHop emits every EmitMillis over the last RetainMillis.
	WindowHop
)

// GroupWindow is a bound HOP/TUMBLE specification.
type GroupWindow struct {
	Kind GroupWindowKind
	// Ts is the timestamp expression over the input row.
	Ts expr.Expr
	// EmitMillis is the emit interval; RetainMillis the window size.
	// For TUMBLE they are equal.
	EmitMillis   int64
	RetainMillis int64
	// AlignMillis shifts window boundaries (Listing 5's TIME '0:30').
	AlignMillis int64
}

// BoundAgg is one aggregate call of a grouped query.
type BoundAgg struct {
	// Fn is COUNT, SUM, MIN, MAX, AVG, START or END.
	Fn string
	// Arg is nil for COUNT(*) and for START/END (whose value comes from
	// window bounds).
	Arg      expr.Expr
	Distinct bool
	T        types.Type
}

// BoundAnalytic is one OVER-windowed analytic call (§3.7).
type BoundAnalytic struct {
	Fn  string
	Arg expr.Expr // nil for COUNT(*)
	// PartitionBy keys group sliding-window state.
	PartitionBy []expr.Expr
	// OrderBy is the timestamp expression ordering the window.
	OrderBy expr.Expr
	// IsRows selects tuple-count framing; otherwise RANGE time framing.
	IsRows bool
	// FrameMillis (RANGE) or FrameRows (ROWS) is the PRECEDING span;
	// Unbounded covers UNBOUNDED PRECEDING.
	FrameMillis int64
	FrameRows   int64
	Unbounded   bool
	T           types.Type
}

// JoinInfo captures a validated two-way join (§3.8).
type JoinInfo struct {
	Kind ast.JoinKind
	// On is the full join condition over the combined row.
	On expr.Expr
	// LeftKey/RightKey are the equi-join key expressions, each evaluated
	// over the combined row but referencing only its own side's columns.
	LeftKey, RightKey expr.Expr
	// WindowMillis bounds a stream-stream join's time window; 0 for
	// stream-to-relation joins.
	WindowMillis int64
	// LeftTsIdx/RightTsIdx are combined-row indexes of each side's
	// timestamp column (-1 when absent).
	LeftTsIdx, RightTsIdx int
	// LeftRepartitionCol/RightRepartitionCol name the column a side must
	// be re-keyed by before the join when its equi-key differs from the
	// publisher's partition key (§7 future work 1); empty = co-partitioned.
	LeftRepartitionCol, RightRepartitionCol string
}

// BoundSelect is a fully validated SELECT.
type BoundSelect struct {
	Scope     *Scope
	Join      *JoinInfo
	Where     expr.Expr
	GroupKeys []expr.Expr
	Window    *GroupWindow
	Aggs      []*BoundAgg
	Having    expr.Expr
	Analytics []*BoundAnalytic
	// Projs are the output expressions. For grouped queries they read the
	// group-output row [keys..., aggs...]; for analytic queries the
	// extended row [input..., analytics...]; otherwise the input row.
	Projs       []expr.Expr
	OutputNames []string
	Output      *types.RowType
	Streaming   bool
	Distinct    bool
	// TimestampIdx is the output timestamp column (-1 if none).
	TimestampIdx int
}

// Grouped reports whether the query aggregates.
func (b *BoundSelect) Grouped() bool {
	return len(b.GroupKeys) > 0 || b.Window != nil || len(b.Aggs) > 0
}

// Result is the outcome of validation.
type Result struct {
	Root *BoundSelect
	// View is set when the statement was CREATE VIEW.
	View *ast.CreateViewStmt
	// InsertTarget is set when the statement was INSERT INTO.
	InsertTarget string
	Warnings     []string
}

// Validator validates statements against a catalog.
type Validator struct {
	Catalog *catalog.Catalog
}

// New returns a validator over cat.
func New(cat *catalog.Catalog) *Validator { return &Validator{Catalog: cat} }

// Validate checks a statement and returns its bound form.
func (v *Validator) Validate(stmt ast.Statement) (*Result, error) {
	res := &Result{}
	switch s := stmt.(type) {
	case *ast.SelectStmt:
		b, err := v.validateSelect(s, res, true)
		if err != nil {
			return nil, err
		}
		res.Root = b
	case *ast.CreateViewStmt:
		b, err := v.validateSelect(s.Select, res, false)
		if err != nil {
			return nil, err
		}
		if len(s.Columns) > 0 {
			if len(s.Columns) != b.Output.Arity() {
				return nil, fmt.Errorf("validate: view %q declares %d columns, query produces %d",
					s.Name, len(s.Columns), b.Output.Arity())
			}
			cols := make([]types.Column, b.Output.Arity())
			for i, name := range s.Columns {
				cols[i] = types.Column{Name: name, Type: b.Output.Columns[i].Type}
			}
			b.Output = types.NewRowType(cols...)
			b.OutputNames = append([]string(nil), s.Columns...)
		}
		res.Root = b
		res.View = s
	case *ast.InsertStmt:
		b, err := v.validateSelect(s.Select, res, true)
		if err != nil {
			return nil, err
		}
		if target, err := v.Catalog.Resolve(s.Target); err == nil {
			if target.Row != nil && target.Row.Arity() != b.Output.Arity() {
				return nil, fmt.Errorf("validate: INSERT target %q has %d columns, query produces %d",
					s.Target, target.Row.Arity(), b.Output.Arity())
			}
		}
		res.Root = b
		res.InsertTarget = s.Target
	default:
		return nil, fmt.Errorf("validate: unsupported statement %T", stmt)
	}
	return res, nil
}

// validateSelect checks one SELECT. top indicates a top-level query, where
// the STREAM keyword decides execution mode; in subqueries and views STREAM
// is discarded (§3.3).
func (v *Validator) validateSelect(sel *ast.SelectStmt, res *Result, top bool) (*BoundSelect, error) {
	if sel.From == nil {
		return nil, fmt.Errorf("validate: SELECT requires a FROM clause")
	}
	b := &BoundSelect{TimestampIdx: -1}

	scope, join, err := v.bindFrom(sel.From, res)
	if err != nil {
		return nil, err
	}
	b.Scope = scope
	b.Join = join

	anyStream := false
	for _, r := range scope.Rels {
		if r.IsStream {
			anyStream = true
		}
	}
	if top && sel.Stream {
		if !anyStream {
			return nil, fmt.Errorf("validate: SELECT STREAM requires at least one stream input")
		}
		b.Streaming = true
	}
	if !top && sel.Stream {
		res.Warnings = append(res.Warnings,
			"STREAM keyword inside a sub-query or view has no effect and was discarded")
	}

	inputBinder := &binder{scope: scope}

	if sel.Where != nil {
		w, err := inputBinder.bind(sel.Where)
		if err != nil {
			return nil, fmt.Errorf("validate: WHERE: %w", err)
		}
		if err := requireBoolean(w, "WHERE"); err != nil {
			return nil, err
		}
		if containsAggregateAST(sel.Where) {
			return nil, fmt.Errorf("validate: aggregates are not allowed in WHERE (use HAVING)")
		}
		b.Where = w
	}

	// GROUP BY: split window functions from plain keys.
	for _, g := range sel.GroupBy {
		if fc, ok := g.(*ast.FuncCall); ok && (fc.Name == "HOP" || fc.Name == "TUMBLE") {
			if b.Window != nil {
				return nil, fmt.Errorf("validate: at most one HOP/TUMBLE per GROUP BY")
			}
			win, err := v.bindGroupWindow(fc, inputBinder)
			if err != nil {
				return nil, err
			}
			b.Window = win
			continue
		}
		ge, err := inputBinder.bind(g)
		if err != nil {
			return nil, fmt.Errorf("validate: GROUP BY: %w", err)
		}
		b.GroupKeys = append(b.GroupKeys, ge)
	}

	// Detect aggregation: explicit GROUP BY, or aggregate calls in the
	// select list / HAVING without grouping (implicit single group).
	hasAggCalls := sel.Having != nil && containsAggregateAST(sel.Having)
	for _, it := range sel.Items {
		if !it.Star && containsAggregateAST(it.Expr) {
			hasAggCalls = true
		}
	}
	grouped := len(sel.GroupBy) > 0 || hasAggCalls

	// Analytic functions (OVER) cannot mix with grouping in one SELECT.
	hasAnalytics := false
	for _, it := range sel.Items {
		if !it.Star && containsAnalyticAST(it.Expr) {
			hasAnalytics = true
		}
	}
	if hasAnalytics && grouped {
		return nil, fmt.Errorf("validate: analytic functions cannot be combined with GROUP BY in one query block")
	}

	switch {
	case grouped:
		if err := v.bindGroupedOutputs(sel, b, inputBinder); err != nil {
			return nil, err
		}
	case hasAnalytics:
		if err := v.bindAnalyticOutputs(sel, b, inputBinder); err != nil {
			return nil, err
		}
	default:
		if sel.Having != nil {
			return nil, fmt.Errorf("validate: HAVING requires aggregation")
		}
		if err := v.bindSimpleOutputs(sel, b, inputBinder); err != nil {
			return nil, err
		}
	}
	b.Distinct = sel.Distinct
	if b.Distinct && b.Streaming {
		return nil, fmt.Errorf("validate: SELECT DISTINCT is not supported on streaming queries")
	}

	// Timestamp tracking (§7 item 2): first output column of TIMESTAMP type.
	for i, c := range b.Output.Columns {
		if c.Type == types.Timestamp {
			b.TimestampIdx = i
			break
		}
	}
	if b.Streaming && b.TimestampIdx < 0 {
		res.Warnings = append(res.Warnings,
			"derived stream has no timestamp column; time-based window queries on it will be rejected")
	}
	return b, nil
}

// bindFrom resolves the FROM clause into a scope (and join info for two-way
// joins).
func (v *Validator) bindFrom(from ast.TableRef, res *Result) (*Scope, *JoinInfo, error) {
	switch f := from.(type) {
	case *ast.TableName:
		rel, err := v.bindTableName(f, res)
		if err != nil {
			return nil, nil, err
		}
		return &Scope{Rels: []*Relation{rel}}, nil, nil
	case *ast.SubqueryRef:
		sub, err := v.validateSelect(f.Select, res, false)
		if err != nil {
			return nil, nil, err
		}
		alias := f.Alias
		rel := &Relation{
			Alias:        alias,
			Sub:          sub,
			Row:          sub.Output,
			IsStream:     subIsStream(sub),
			TimestampIdx: sub.TimestampIdx,
		}
		return &Scope{Rels: []*Relation{rel}}, nil, nil
	case *ast.JoinRef:
		return v.bindJoin(f, res)
	default:
		return nil, nil, fmt.Errorf("validate: unsupported FROM clause %T", from)
	}
}

func subIsStream(b *BoundSelect) bool {
	for _, r := range b.Scope.Rels {
		if r.IsStream {
			return true
		}
	}
	return false
}

func (v *Validator) bindTableName(f *ast.TableName, res *Result) (*Relation, error) {
	obj, err := v.Catalog.Resolve(f.Name)
	if err != nil {
		return nil, err
	}
	alias := f.Alias
	if alias == "" {
		alias = f.Name
	}
	if obj.Kind == catalog.View {
		sub, err := v.validateSelect(obj.Def, res, false)
		if err != nil {
			return nil, fmt.Errorf("validate: expanding view %q: %w", obj.Name, err)
		}
		if obj.Row != nil && obj.Row.Arity() == sub.Output.Arity() {
			// Apply the view's declared column names.
			sub.Output = obj.Row
		}
		return &Relation{
			Alias:        alias,
			Sub:          sub,
			Row:          sub.Output,
			IsStream:     subIsStream(sub),
			TimestampIdx: sub.TimestampIdx,
		}, nil
	}
	tsIdx := -1
	if obj.TimestampCol != "" {
		tsIdx = obj.Row.Index(obj.TimestampCol)
	}
	return &Relation{
		Alias:        alias,
		Object:       obj,
		Row:          obj.Row,
		IsStream:     obj.Kind == catalog.Stream,
		TimestampIdx: tsIdx,
	}, nil
}

func (v *Validator) bindJoin(j *ast.JoinRef, res *Result) (*Scope, *JoinInfo, error) {
	if _, nested := j.Left.(*ast.JoinRef); nested {
		return nil, nil, fmt.Errorf("validate: only two-way joins are supported; chain jobs for multi-way joins")
	}
	leftScope, _, err := v.bindFrom(j.Left, res)
	if err != nil {
		return nil, nil, err
	}
	rightScope, _, err := v.bindFrom(j.Right, res)
	if err != nil {
		return nil, nil, err
	}
	left := leftScope.Rels[0]
	right := rightScope.Rels[0]
	right.Offset = left.Row.Arity()
	scope := &Scope{Rels: []*Relation{left, right}}

	if !left.IsStream && !right.IsStream {
		// Pure relation-to-relation joins execute in table mode only.
		if j.Kind != ast.InnerJoin {
			return nil, nil, fmt.Errorf("validate: outer relation-to-relation joins are not supported")
		}
	}
	if j.Kind != ast.InnerJoin {
		return nil, nil, fmt.Errorf("validate: only INNER joins are supported in this version")
	}

	jb := &binder{scope: scope}
	on, err := jb.bind(j.On)
	if err != nil {
		return nil, nil, fmt.Errorf("validate: JOIN ON: %w", err)
	}
	if err := requireBoolean(on, "JOIN ON"); err != nil {
		return nil, nil, err
	}

	info := &JoinInfo{Kind: j.Kind, On: on, LeftTsIdx: -1, RightTsIdx: -1}
	if left.TimestampIdx >= 0 {
		info.LeftTsIdx = left.Offset + left.TimestampIdx
	}
	if right.TimestampIdx >= 0 {
		info.RightTsIdx = right.Offset + right.TimestampIdx
	}

	// Extract the equi-join key from the ON conjuncts.
	lk, rk := v.extractEquiKey(j.On, scope, left, right)
	info.LeftKey, info.RightKey = lk, rk

	// Extract a BETWEEN time window for stream-stream joins (Listing 7).
	info.WindowMillis = extractJoinWindow(j.On, left, right)

	// Repartitioning (§7 future work 1): a stream side whose equi-key is
	// not the publisher's partition key must be re-keyed through an
	// intermediate stream so matching keys land in the same task.
	if info.LeftKey != nil {
		col, need, err := repartitionNeed(left, info.LeftKey)
		if err != nil {
			return nil, nil, err
		}
		if need {
			info.LeftRepartitionCol = col
		}
		col, need, err = repartitionNeed(right, info.RightKey)
		if err != nil {
			return nil, nil, err
		}
		if need {
			info.RightRepartitionCol = col
		}
	}

	if left.IsStream && right.IsStream {
		if info.LeftKey == nil {
			return nil, nil, fmt.Errorf("validate: stream-to-stream joins require an equality condition on a partitioning key")
		}
		if info.WindowMillis <= 0 {
			return nil, nil, fmt.Errorf("validate: stream-to-stream joins require a time window condition (ts BETWEEN ts - INTERVAL AND ts + INTERVAL)")
		}
		if info.LeftTsIdx < 0 || info.RightTsIdx < 0 {
			return nil, nil, fmt.Errorf("validate: stream-to-stream joins require timestamp columns on both inputs")
		}
	} else if left.IsStream != right.IsStream {
		// Stream-to-relation join (§3.8.2, §4.4).
		if info.LeftKey == nil {
			return nil, nil, fmt.Errorf("validate: stream-to-relation joins require an equality condition")
		}
		relSide := right
		if right.IsStream {
			relSide = left
		}
		if relSide.Object == nil || relSide.Object.Kind != catalog.Table {
			return nil, nil, fmt.Errorf("validate: the relation side of a stream-to-relation join must be a base table with a changelog")
		}
	}
	return scope, info, nil
}

// repartitionNeed decides whether rel must be re-keyed for the join. It
// returns the column to re-key by (the equi-key column within rel). Sides
// with unknown publisher keys are assumed co-partitioned, matching the
// prototype's behavior before this extension.
func repartitionNeed(rel *Relation, key expr.Expr) (string, bool, error) {
	if rel.Object == nil || rel.Object.PartitionKeyCol == "" {
		return "", false, nil
	}
	c, isCol := key.(*expr.ColRef)
	localIdx := -1
	if isCol {
		localIdx = c.Idx - rel.Offset
	}
	partIdx := rel.Row.Index(rel.Object.PartitionKeyCol)
	if isCol && localIdx == partIdx {
		return "", false, nil // already partitioned by the join key
	}
	if rel.Object.Kind == catalog.Table {
		return "", false, fmt.Errorf(
			"validate: relation %q is keyed by %q but the join uses a different key; changelog streams must be partitioned like the stream they join (§4.4)",
			rel.Object.Name, rel.Object.PartitionKeyCol)
	}
	if !isCol || localIdx < 0 || localIdx >= rel.Row.Arity() {
		return "", false, fmt.Errorf(
			"validate: stream %q needs repartitioning by a computed join key, which is not supported; join on a plain column",
			rel.Object.Name)
	}
	return rel.Row.Columns[localIdx].Name, true, nil
}

// extractEquiKey finds a conjunct `a = b` with a referencing only the left
// relation and b only the right (or swapped), returning bound key
// expressions over the combined row.
func (v *Validator) extractEquiKey(on ast.Expr, scope *Scope, left, right *Relation) (expr.Expr, expr.Expr) {
	for _, conj := range conjuncts(on) {
		eq, ok := conj.(*ast.Binary)
		if !ok || eq.Op != ast.OpEq {
			continue
		}
		b := &binder{scope: scope}
		le, err1 := b.bind(eq.L)
		re, err2 := b.bind(eq.R)
		if err1 != nil || err2 != nil {
			continue
		}
		lRefs := colRefRange(le)
		rRefs := colRefRange(re)
		split := right.Offset
		switch {
		case lRefs.onlyBelow(split) && rRefs.onlyAtOrAbove(split):
			return le, re
		case rRefs.onlyBelow(split) && lRefs.onlyAtOrAbove(split):
			return re, le
		}
	}
	return nil, nil
}

// extractJoinWindow looks for `X.ts BETWEEN Y.ts - INTERVAL AND Y.ts +
// INTERVAL` and returns the wider bound in millis (0 when absent).
func extractJoinWindow(on ast.Expr, left, right *Relation) int64 {
	for _, conj := range conjuncts(on) {
		bt, ok := conj.(*ast.Between)
		if !ok || bt.Not {
			continue
		}
		loIv := intervalOffset(bt.Lo)
		hiIv := intervalOffset(bt.Hi)
		if loIv == 0 && hiIv == 0 {
			continue
		}
		w := loIv
		if hiIv > w {
			w = hiIv
		}
		if w > 0 {
			return w
		}
	}
	return 0
}

// intervalOffset returns the interval magnitude of `expr ± INTERVAL`, or 0.
func intervalOffset(e ast.Expr) int64 {
	b, ok := e.(*ast.Binary)
	if !ok || (b.Op != ast.OpAdd && b.Op != ast.OpSub) {
		return 0
	}
	if iv, ok := b.R.(*ast.IntervalLit); ok {
		return iv.Millis
	}
	return 0
}

// conjuncts flattens a tree of ANDs.
func conjuncts(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.Binary); ok && b.Op == ast.OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []ast.Expr{e}
}

// refRange tracks which combined-row columns an expression touches.
type refRange struct {
	min, max int
	any      bool
}

func colRefRange(e expr.Expr) refRange {
	r := refRange{min: 1 << 30, max: -1}
	walkExpr(e, func(x expr.Expr) {
		if c, ok := x.(*expr.ColRef); ok {
			r.any = true
			if c.Idx < r.min {
				r.min = c.Idx
			}
			if c.Idx > r.max {
				r.max = c.Idx
			}
		}
	})
	return r
}

func (r refRange) onlyBelow(split int) bool     { return r.any && r.max < split }
func (r refRange) onlyAtOrAbove(split int) bool { return r.any && r.min >= split }

// walkExpr visits every node of a bound expression.
func walkExpr(e expr.Expr, fn func(expr.Expr)) {
	fn(e)
	switch n := e.(type) {
	case *expr.Binary:
		walkExpr(n.L, fn)
		walkExpr(n.R, fn)
	case *expr.Not:
		walkExpr(n.X, fn)
	case *expr.Neg:
		walkExpr(n.X, fn)
	case *expr.IsNull:
		walkExpr(n.X, fn)
	case *expr.Case:
		for _, w := range n.Whens {
			walkExpr(w.When, fn)
			walkExpr(w.Then, fn)
		}
		if n.Else != nil {
			walkExpr(n.Else, fn)
		}
	case *expr.Like:
		walkExpr(n.X, fn)
		walkExpr(n.Pattern, fn)
	case *expr.InList:
		walkExpr(n.X, fn)
		for _, i := range n.List {
			walkExpr(i, fn)
		}
	case *expr.Cast:
		walkExpr(n.X, fn)
	case *expr.Call:
		for _, a := range n.Args {
			walkExpr(a, fn)
		}
	case *expr.FloorTime:
		walkExpr(n.X, fn)
	}
}

// containsAggregateAST reports whether e contains a non-analytic aggregate
// call.
func containsAggregateAST(e ast.Expr) bool {
	found := false
	walkAST(e, func(x ast.Expr) {
		if fc, ok := x.(*ast.FuncCall); ok && fc.Over == nil && IsAggregate(fc.Name) {
			found = true
		}
	})
	return found
}

// containsAnalyticAST reports whether e contains an OVER call.
func containsAnalyticAST(e ast.Expr) bool {
	found := false
	walkAST(e, func(x ast.Expr) {
		if fc, ok := x.(*ast.FuncCall); ok && fc.Over != nil {
			found = true
		}
	})
	return found
}

// walkAST visits expression nodes (not descending into subqueries).
func walkAST(e ast.Expr, fn func(ast.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case *ast.Binary:
		walkAST(n.L, fn)
		walkAST(n.R, fn)
	case *ast.Unary:
		walkAST(n.X, fn)
	case *ast.Between:
		walkAST(n.X, fn)
		walkAST(n.Lo, fn)
		walkAST(n.Hi, fn)
	case *ast.InList:
		walkAST(n.X, fn)
		for _, i := range n.List {
			walkAST(i, fn)
		}
	case *ast.IsNull:
		walkAST(n.X, fn)
	case *ast.Like:
		walkAST(n.X, fn)
		walkAST(n.Pattern, fn)
	case *ast.Case:
		walkAST(n.Operand, fn)
		for _, w := range n.Whens {
			walkAST(w.When, fn)
			walkAST(w.Then, fn)
		}
		walkAST(n.Else, fn)
	case *ast.Cast:
		walkAST(n.X, fn)
	case *ast.FloorTo:
		walkAST(n.X, fn)
	case *ast.FuncCall:
		for _, a := range n.Args {
			walkAST(a, fn)
		}
		if n.Over != nil {
			for _, p := range n.Over.PartitionBy {
				walkAST(p, fn)
			}
			for _, o := range n.Over.OrderBy {
				walkAST(o, fn)
			}
		}
	}
}

// bindGroupWindow validates HOP(ts, emit[, retain[, align]]) / TUMBLE(ts,
// size).
func (v *Validator) bindGroupWindow(fc *ast.FuncCall, b *binder) (*GroupWindow, error) {
	w := &GroupWindow{}
	switch fc.Name {
	case "TUMBLE":
		if len(fc.Args) != 2 {
			return nil, fmt.Errorf("validate: TUMBLE(ts, size) takes 2 arguments, got %d", len(fc.Args))
		}
		w.Kind = WindowTumble
	case "HOP":
		if len(fc.Args) < 2 || len(fc.Args) > 4 {
			return nil, fmt.Errorf("validate: HOP(ts, emit[, retain[, align]]) takes 2-4 arguments, got %d", len(fc.Args))
		}
		w.Kind = WindowHop
	}
	ts, err := b.bind(fc.Args[0])
	if err != nil {
		return nil, fmt.Errorf("validate: %s timestamp: %w", fc.Name, err)
	}
	if ts.Type() != types.Timestamp {
		return nil, fmt.Errorf("validate: %s requires a TIMESTAMP column, got %s (queries over derived streams need a preserved timestamp)", fc.Name, ts.Type())
	}
	w.Ts = ts
	iv, ok := fc.Args[1].(*ast.IntervalLit)
	if !ok {
		return nil, fmt.Errorf("validate: %s interval must be an INTERVAL literal", fc.Name)
	}
	w.EmitMillis = iv.Millis
	w.RetainMillis = iv.Millis
	if len(fc.Args) >= 3 {
		riv, ok := fc.Args[2].(*ast.IntervalLit)
		if !ok {
			return nil, fmt.Errorf("validate: HOP retain must be an INTERVAL literal")
		}
		w.RetainMillis = riv.Millis
	}
	if len(fc.Args) == 4 {
		al, ok := fc.Args[3].(*ast.TimeLit)
		if !ok {
			return nil, fmt.Errorf("validate: HOP alignment must be a TIME literal")
		}
		w.AlignMillis = al.Millis
	}
	if w.EmitMillis <= 0 || w.RetainMillis <= 0 {
		return nil, fmt.Errorf("validate: window intervals must be positive")
	}
	return w, nil
}

// --- output binding: simple / grouped / analytic ---

func (v *Validator) bindSimpleOutputs(sel *ast.SelectStmt, b *BoundSelect, ib *binder) error {
	for _, it := range sel.Items {
		if it.Star {
			if err := expandStar(it, b.Scope, &b.Projs, &b.OutputNames); err != nil {
				return err
			}
			continue
		}
		e, err := ib.bind(it.Expr)
		if err != nil {
			return fmt.Errorf("validate: select list: %w", err)
		}
		b.Projs = append(b.Projs, e)
		b.OutputNames = append(b.OutputNames, outputName(it, len(b.OutputNames)))
	}
	b.Output = outputRowType(b.Projs, b.OutputNames)
	return nil
}

func expandStar(it ast.SelectItem, scope *Scope, projs *[]expr.Expr, names *[]string) error {
	matched := false
	for _, r := range scope.Rels {
		if it.StarTable != "" && !equalFold(r.Alias, it.StarTable) {
			continue
		}
		matched = true
		for i, c := range r.Row.Columns {
			*projs = append(*projs, &expr.ColRef{Idx: r.Offset + i, Name: c.Name, T: c.Type})
			*names = append(*names, c.Name)
		}
	}
	if !matched {
		return fmt.Errorf("validate: unknown table %q in %s.*", it.StarTable, it.StarTable)
	}
	return nil
}

func outputName(it ast.SelectItem, idx int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if id, ok := it.Expr.(*ast.Ident); ok {
		return id.Column()
	}
	if f, ok := it.Expr.(*ast.FloorTo); ok {
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Column()
		}
	}
	return fmt.Sprintf("EXPR$%d", idx)
}

func outputRowType(projs []expr.Expr, names []string) *types.RowType {
	cols := make([]types.Column, len(projs))
	for i := range projs {
		cols[i] = types.Column{Name: names[i], Type: projs[i].Type()}
	}
	return types.NewRowType(cols...)
}

// bindGroupedOutputs rewrites select items and HAVING over the group-output
// row [keys..., aggs...].
func (v *Validator) bindGroupedOutputs(sel *ast.SelectStmt, b *BoundSelect, ib *binder) error {
	g := &groupRewriter{v: v, b: b, ib: ib}
	// Pre-compute bound forms of group keys for matching.
	for _, k := range b.GroupKeys {
		g.keyStrs = append(g.keyStrs, k.String())
	}
	for _, it := range sel.Items {
		if it.Star {
			return fmt.Errorf("validate: * is not allowed with GROUP BY")
		}
		e, err := g.rewrite(it.Expr)
		if err != nil {
			return err
		}
		b.Projs = append(b.Projs, e)
		b.OutputNames = append(b.OutputNames, outputName(it, len(b.OutputNames)))
	}
	if sel.Having != nil {
		h, err := g.rewrite(sel.Having)
		if err != nil {
			return fmt.Errorf("validate: HAVING: %w", err)
		}
		if err := requireBoolean(h, "HAVING"); err != nil {
			return err
		}
		b.Having = h
	}
	b.Output = outputRowType(b.Projs, b.OutputNames)
	return nil
}

// groupRewriter lowers expressions of a grouped query to reads over the
// group-output row.
type groupRewriter struct {
	v       *Validator
	b       *BoundSelect
	ib      *binder
	keyStrs []string
}

func (g *groupRewriter) rewrite(e ast.Expr) (expr.Expr, error) {
	// Aggregate call: register it, read its slot.
	if fc, ok := e.(*ast.FuncCall); ok && fc.Over == nil && IsAggregate(fc.Name) {
		return g.addAgg(fc)
	}
	// Expression over grouped columns: matches a GROUP BY key?
	if be, err := g.ib.bind(e); err == nil {
		s := be.String()
		for i, ks := range g.keyStrs {
			if s == ks {
				return &expr.ColRef{Idx: i, Name: fmt.Sprintf("$key%d", i), T: g.b.GroupKeys[i].Type()}, nil
			}
		}
		if !colRefRange(be).any {
			return be, nil // constant expression
		}
	}
	// Composite: rewrite children through the same rules.
	switch n := e.(type) {
	case *ast.Binary:
		l, err := g.rewrite(n.L)
		if err != nil {
			return nil, err
		}
		r, err := g.rewrite(n.R)
		if err != nil {
			return nil, err
		}
		return typedBinary(n.Op, l, r)
	case *ast.Unary:
		x, err := g.rewrite(n.X)
		if err != nil {
			return nil, err
		}
		if n.Op == ast.OpNot {
			return &expr.Not{X: x}, nil
		}
		return &expr.Neg{X: x}, nil
	case *ast.Case:
		out := &expr.Case{}
		t := types.Null
		for _, w := range n.Whens {
			var when ast.Expr = w.When
			if n.Operand != nil {
				when = &ast.Binary{Op: ast.OpEq, L: n.Operand, R: w.When}
			}
			we, err := g.rewrite(when)
			if err != nil {
				return nil, err
			}
			te, err := g.rewrite(w.Then)
			if err != nil {
				return nil, err
			}
			var terr error
			t, terr = types.Common(t, te.Type())
			if terr != nil {
				return nil, terr
			}
			out.Whens = append(out.Whens, expr.CaseWhen{When: we, Then: te})
		}
		if n.Else != nil {
			ee, err := g.rewrite(n.Else)
			if err != nil {
				return nil, err
			}
			var terr error
			t, terr = types.Common(t, ee.Type())
			if terr != nil {
				return nil, terr
			}
			out.Else = ee
		}
		out.T = t
		return out, nil
	case *ast.FuncCall:
		args := make([]expr.Expr, len(n.Args))
		argTypes := make([]types.Type, len(n.Args))
		fn, ok := expr.Builtins[n.Name]
		if !ok {
			return nil, fmt.Errorf("validate: unknown function %s", n.Name)
		}
		for i, a := range n.Args {
			ae, err := g.rewrite(a)
			if err != nil {
				return nil, err
			}
			args[i] = ae
			argTypes[i] = ae.Type()
		}
		rt, err := fn.ResultType(argTypes)
		if err != nil {
			return nil, err
		}
		return &expr.Call{Fn: n.Name, Args: args, T: rt}, nil
	case *ast.Cast:
		x, err := g.rewrite(n.X)
		if err != nil {
			return nil, err
		}
		t, err := types.ByName(n.TypeName)
		if err != nil {
			return nil, err
		}
		return &expr.Cast{X: x, T: t}, nil
	case *ast.IsNull:
		x, err := g.rewrite(n.X)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{Not: n.Not, X: x}, nil
	default:
		return nil, fmt.Errorf("validate: expression %s must appear in GROUP BY or inside an aggregate", e)
	}
}

func typedBinary(op ast.BinaryOp, l, r expr.Expr) (expr.Expr, error) {
	bop := binOpFor(op)
	switch {
	case op.Logical(), op.Comparison():
		return &expr.Binary{Op: bop, L: l, R: r, T: types.Boolean}, nil
	case op == ast.OpConcat:
		return &expr.Binary{Op: bop, L: l, R: r, T: types.Varchar}, nil
	default:
		t, err := types.Common(l.Type(), r.Type())
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: bop, L: l, R: r, T: t}, nil
	}
}

// addAgg registers an aggregate call, returning a read of its group-output
// slot.
func (g *groupRewriter) addAgg(fc *ast.FuncCall) (expr.Expr, error) {
	agg := &BoundAgg{Fn: fc.Name, Distinct: fc.Distinct}
	switch fc.Name {
	case "COUNT":
		if !fc.Star {
			if len(fc.Args) != 1 {
				return nil, fmt.Errorf("validate: COUNT takes one argument")
			}
			a, err := g.ib.bind(fc.Args[0])
			if err != nil {
				return nil, err
			}
			agg.Arg = a
		}
		agg.T = types.Bigint
	case "SUM", "MIN", "MAX", "AVG":
		if fc.Star || len(fc.Args) != 1 {
			return nil, fmt.Errorf("validate: %s takes one argument", fc.Name)
		}
		a, err := g.ib.bind(fc.Args[0])
		if err != nil {
			return nil, err
		}
		if !a.Type().Numeric() && !(fc.Name == "MIN" || fc.Name == "MAX") {
			return nil, fmt.Errorf("validate: %s requires a numeric argument, got %s", fc.Name, a.Type())
		}
		agg.Arg = a
		if fc.Name == "AVG" {
			agg.T = types.Double
		} else {
			agg.T = a.Type()
		}
	case "START", "END":
		// Window-bound aggregates (§3.6): value comes from the window.
		if g.b.Window == nil {
			return nil, fmt.Errorf("validate: %s requires a HOP or TUMBLE window", fc.Name)
		}
		if len(fc.Args) != 1 {
			return nil, fmt.Errorf("validate: %s takes the timestamp column", fc.Name)
		}
		agg.T = types.Timestamp
	default:
		// User-defined aggregate (§7 future work 4).
		u, ok := udf.LookupAggregate(fc.Name)
		if !ok {
			return nil, fmt.Errorf("validate: unknown aggregate %s", fc.Name)
		}
		if fc.Star || len(fc.Args) != 1 {
			return nil, fmt.Errorf("validate: %s takes one argument", fc.Name)
		}
		a, err := g.ib.bind(fc.Args[0])
		if err != nil {
			return nil, err
		}
		agg.Arg = a
		agg.T, err = u.ResultType(a.Type())
		if err != nil {
			return nil, fmt.Errorf("validate: %s: %v", fc.Name, err)
		}
	}
	// Reuse identical aggregates.
	for i, existing := range g.b.Aggs {
		if sameAgg(existing, agg) {
			return &expr.ColRef{Idx: len(g.b.GroupKeys) + i, Name: fmt.Sprintf("$agg%d", i), T: existing.T}, nil
		}
	}
	g.b.Aggs = append(g.b.Aggs, agg)
	idx := len(g.b.GroupKeys) + len(g.b.Aggs) - 1
	return &expr.ColRef{Idx: idx, Name: fmt.Sprintf("$agg%d", len(g.b.Aggs)-1), T: agg.T}, nil
}

func sameAgg(a, b *BoundAgg) bool {
	if a.Fn != b.Fn || a.Distinct != b.Distinct || a.T != b.T {
		return false
	}
	switch {
	case a.Arg == nil && b.Arg == nil:
		return true
	case a.Arg == nil || b.Arg == nil:
		return false
	default:
		return a.Arg.String() == b.Arg.String()
	}
}

// bindAnalyticOutputs handles OVER-window queries: the extended row is
// [input columns..., analytic values...].
func (v *Validator) bindAnalyticOutputs(sel *ast.SelectStmt, b *BoundSelect, ib *binder) error {
	inputArity := b.Scope.Combined().Arity()
	rewrite := func(e ast.Expr) (expr.Expr, error) {
		return v.rewriteAnalytic(e, b, ib, inputArity)
	}
	for _, it := range sel.Items {
		if it.Star {
			if err := expandStar(it, b.Scope, &b.Projs, &b.OutputNames); err != nil {
				return err
			}
			continue
		}
		e, err := rewrite(it.Expr)
		if err != nil {
			return err
		}
		b.Projs = append(b.Projs, e)
		b.OutputNames = append(b.OutputNames, outputName(it, len(b.OutputNames)))
	}
	b.Output = outputRowType(b.Projs, b.OutputNames)
	return nil
}

// rewriteAnalytic replaces OVER calls with reads of extended-row slots and
// binds everything else over the input scope.
func (v *Validator) rewriteAnalytic(e ast.Expr, b *BoundSelect, ib *binder, inputArity int) (expr.Expr, error) {
	if fc, ok := e.(*ast.FuncCall); ok && fc.Over != nil {
		an, err := v.bindAnalytic(fc, b, ib)
		if err != nil {
			return nil, err
		}
		for i, existing := range b.Analytics {
			if existing == an {
				return &expr.ColRef{Idx: inputArity + i, Name: fmt.Sprintf("$win%d", i), T: an.T}, nil
			}
		}
		return nil, fmt.Errorf("validate: internal: analytic not registered")
	}
	if !containsAnalyticAST(e) {
		return ib.bind(e)
	}
	// Composite containing an analytic call somewhere below.
	switch n := e.(type) {
	case *ast.Binary:
		l, err := v.rewriteAnalytic(n.L, b, ib, inputArity)
		if err != nil {
			return nil, err
		}
		r, err := v.rewriteAnalytic(n.R, b, ib, inputArity)
		if err != nil {
			return nil, err
		}
		return typedBinary(n.Op, l, r)
	case *ast.Unary:
		x, err := v.rewriteAnalytic(n.X, b, ib, inputArity)
		if err != nil {
			return nil, err
		}
		if n.Op == ast.OpNot {
			return &expr.Not{X: x}, nil
		}
		return &expr.Neg{X: x}, nil
	default:
		return nil, fmt.Errorf("validate: unsupported analytic expression shape %T", e)
	}
}

func (v *Validator) bindAnalytic(fc *ast.FuncCall, b *BoundSelect, ib *binder) (*BoundAnalytic, error) {
	if !IsAggregate(fc.Name) || fc.Name == "START" || fc.Name == "END" {
		return nil, fmt.Errorf("validate: %s cannot be used as an analytic function", fc.Name)
	}
	an := &BoundAnalytic{Fn: fc.Name}
	if fc.Star {
		if fc.Name != "COUNT" {
			return nil, fmt.Errorf("validate: only COUNT(*) may use *")
		}
	} else {
		if len(fc.Args) != 1 {
			return nil, fmt.Errorf("validate: %s OVER takes one argument", fc.Name)
		}
		a, err := ib.bind(fc.Args[0])
		if err != nil {
			return nil, err
		}
		an.Arg = a
	}
	switch fc.Name {
	case "COUNT":
		an.T = types.Bigint
	case "AVG":
		an.T = types.Double
	case "SUM", "MIN", "MAX":
		an.T = an.Arg.Type()
	default:
		u, ok := udf.LookupAggregate(fc.Name)
		if !ok {
			return nil, fmt.Errorf("validate: unknown analytic function %s", fc.Name)
		}
		var err error
		an.T, err = u.ResultType(an.Arg.Type())
		if err != nil {
			return nil, fmt.Errorf("validate: %s: %v", fc.Name, err)
		}
	}
	for _, p := range fc.Over.PartitionBy {
		pe, err := ib.bind(p)
		if err != nil {
			return nil, fmt.Errorf("validate: PARTITION BY: %w", err)
		}
		an.PartitionBy = append(an.PartitionBy, pe)
	}
	if len(fc.Over.OrderBy) != 1 {
		return nil, fmt.Errorf("validate: analytic windows over streams require ORDER BY on the timestamp column")
	}
	ob, err := ib.bind(fc.Over.OrderBy[0])
	if err != nil {
		return nil, fmt.Errorf("validate: ORDER BY: %w", err)
	}
	an.OrderBy = ob
	frame := fc.Over.Frame
	if frame == nil {
		return nil, fmt.Errorf("validate: analytic windows over streams require an explicit RANGE or ROWS frame")
	}
	an.IsRows = frame.Unit == ast.FrameRows
	switch bound := frame.Preceding.(type) {
	case nil:
		an.Unbounded = true
	case *ast.IntervalLit:
		if an.IsRows {
			return nil, fmt.Errorf("validate: ROWS frames take a tuple count, not an interval")
		}
		an.FrameMillis = bound.Millis
	case *ast.NumberLit:
		if !an.IsRows {
			return nil, fmt.Errorf("validate: RANGE frames over streams take an INTERVAL bound")
		}
		if !bound.IsInt || bound.Int < 0 {
			return nil, fmt.Errorf("validate: ROWS bound must be a non-negative integer")
		}
		an.FrameRows = bound.Int
	default:
		return nil, fmt.Errorf("validate: unsupported frame bound %T", frame.Preceding)
	}
	if !an.IsRows && !an.Unbounded {
		if ob.Type() != types.Timestamp {
			return nil, fmt.Errorf("validate: RANGE frames require ORDER BY a TIMESTAMP column, got %s", ob.Type())
		}
	}
	b.Analytics = append(b.Analytics, an)
	return an, nil
}

// FormatWarnings renders warnings for display.
func FormatWarnings(ws []string) string {
	if len(ws) == 0 {
		return ""
	}
	return "WARNING: " + strings.Join(ws, "\nWARNING: ")
}

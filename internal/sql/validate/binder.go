package validate

import (
	"fmt"

	"samzasql/internal/sql/ast"
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/types"
	"samzasql/internal/sql/udf"
)

// aggFuncs are the aggregate functions of §3.6 (START/END capture window
// bounds) plus the SQL standards.
var aggFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
	"START": true, "END": true,
}

// IsAggregate reports whether name (upper-cased) is an aggregate function —
// a builtin or a registered user-defined aggregate (§7 future work 4).
func IsAggregate(name string) bool {
	if aggFuncs[name] {
		return true
	}
	_, ok := udf.LookupAggregate(name)
	return ok
}

// binder lowers AST expressions to bound expressions over a scope's
// combined row. Aggregate and analytic calls are rejected here; the
// grouped/analytic rewriters in select.go intercept them first.
type binder struct {
	scope *Scope
}

func (b *binder) bind(e ast.Expr) (expr.Expr, error) {
	switch n := e.(type) {
	case *ast.Ident:
		rel, idx, err := b.scope.resolveColumn(n.Qualifier(), n.Column())
		if err != nil {
			return nil, err
		}
		col := rel.Row.Columns[idx]
		return &expr.ColRef{Idx: rel.Offset + idx, Name: col.Name, T: col.Type}, nil
	case *ast.NumberLit:
		if n.IsInt {
			return &expr.Const{V: n.Int, T: types.Bigint}, nil
		}
		return &expr.Const{V: n.Float, T: types.Double}, nil
	case *ast.StringLit:
		return &expr.Const{V: n.V, T: types.Varchar}, nil
	case *ast.BoolLit:
		return &expr.Const{V: n.V, T: types.Boolean}, nil
	case *ast.NullLit:
		return &expr.Const{V: nil, T: types.Null}, nil
	case *ast.IntervalLit:
		return &expr.Const{V: n.Millis, T: types.Interval}, nil
	case *ast.TimeLit:
		return &expr.Const{V: n.Millis, T: types.Interval}, nil
	case *ast.Unary:
		x, err := b.bind(n.X)
		if err != nil {
			return nil, err
		}
		if n.Op == ast.OpNot {
			if err := requireBoolean(x, "NOT"); err != nil {
				return nil, err
			}
			return &expr.Not{X: x}, nil
		}
		if !x.Type().Numeric() && x.Type() != types.Null {
			return nil, fmt.Errorf("validate: cannot negate %s", x.Type())
		}
		return &expr.Neg{X: x}, nil
	case *ast.Binary:
		return b.bindBinary(n)
	case *ast.Between:
		return b.bindBetween(n)
	case *ast.InList:
		return b.bindInList(n)
	case *ast.IsNull:
		x, err := b.bind(n.X)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{Not: n.Not, X: x}, nil
	case *ast.Like:
		x, err := b.bind(n.X)
		if err != nil {
			return nil, err
		}
		p, err := b.bind(n.Pattern)
		if err != nil {
			return nil, err
		}
		if x.Type() != types.Varchar && x.Type() != types.Null {
			return nil, fmt.Errorf("validate: LIKE requires VARCHAR, got %s", x.Type())
		}
		return &expr.Like{Not: n.Not, X: x, Pattern: p}, nil
	case *ast.Case:
		return b.bindCase(n)
	case *ast.Cast:
		x, err := b.bind(n.X)
		if err != nil {
			return nil, err
		}
		t, err := types.ByName(n.TypeName)
		if err != nil {
			return nil, err
		}
		return &expr.Cast{X: x, T: t}, nil
	case *ast.FloorTo:
		x, err := b.bind(n.X)
		if err != nil {
			return nil, err
		}
		if x.Type() != types.Timestamp && x.Type() != types.Bigint {
			return nil, fmt.Errorf("validate: FLOOR TO %s requires a timestamp, got %s", n.Unit, x.Type())
		}
		return &expr.FloorTime{X: x, UnitMillis: n.Unit.Millis(), UnitName: n.Unit.String()}, nil
	case *ast.FuncCall:
		return b.bindCall(n)
	case *ast.Subquery:
		return nil, fmt.Errorf("validate: subqueries are only supported in FROM")
	default:
		return nil, fmt.Errorf("validate: unsupported expression %T", e)
	}
}

func (b *binder) bindBinary(n *ast.Binary) (expr.Expr, error) {
	l, err := b.bind(n.L)
	if err != nil {
		return nil, err
	}
	r, err := b.bind(n.R)
	if err != nil {
		return nil, err
	}
	op := binOpFor(n.Op)
	switch {
	case n.Op.Logical():
		if err := requireBoolean(l, n.Op.String()); err != nil {
			return nil, err
		}
		if err := requireBoolean(r, n.Op.String()); err != nil {
			return nil, err
		}
		return &expr.Binary{Op: op, L: l, R: r, T: types.Boolean}, nil
	case n.Op.Comparison():
		if _, err := types.Common(l.Type(), r.Type()); err != nil {
			return nil, fmt.Errorf("validate: cannot compare %s with %s", l.Type(), r.Type())
		}
		return &expr.Binary{Op: op, L: l, R: r, T: types.Boolean}, nil
	case n.Op == ast.OpConcat:
		return &expr.Binary{Op: expr.Concat, L: l, R: r, T: types.Varchar}, nil
	default:
		t, err := types.Common(l.Type(), r.Type())
		if err != nil || !t.Numeric() && t != types.Null {
			return nil, fmt.Errorf("validate: %s requires numeric operands, got %s and %s",
				n.Op, l.Type(), r.Type())
		}
		// Timestamp - Timestamp yields an interval; Timestamp ± Interval
		// stays a timestamp.
		if l.Type() == types.Timestamp && r.Type() == types.Timestamp && n.Op == ast.OpSub {
			t = types.Interval
		}
		return &expr.Binary{Op: op, L: l, R: r, T: t}, nil
	}
}

func (b *binder) bindBetween(n *ast.Between) (expr.Expr, error) {
	x, err := b.bind(n.X)
	if err != nil {
		return nil, err
	}
	lo, err := b.bind(n.Lo)
	if err != nil {
		return nil, err
	}
	hi, err := b.bind(n.Hi)
	if err != nil {
		return nil, err
	}
	// x BETWEEN lo AND hi  =>  x >= lo AND x <= hi
	ge := &expr.Binary{Op: expr.Gte, L: x, R: lo, T: types.Boolean}
	le := &expr.Binary{Op: expr.Lte, L: x, R: hi, T: types.Boolean}
	var out expr.Expr = &expr.Binary{Op: expr.And, L: ge, R: le, T: types.Boolean}
	if n.Not {
		out = &expr.Not{X: out}
	}
	return out, nil
}

func (b *binder) bindInList(n *ast.InList) (expr.Expr, error) {
	x, err := b.bind(n.X)
	if err != nil {
		return nil, err
	}
	list := make([]expr.Expr, len(n.List))
	for i, e := range n.List {
		le, err := b.bind(e)
		if err != nil {
			return nil, err
		}
		if _, err := types.Common(x.Type(), le.Type()); err != nil {
			return nil, fmt.Errorf("validate: IN list item %d: %v", i, err)
		}
		list[i] = le
	}
	return &expr.InList{Not: n.Not, X: x, List: list}, nil
}

func (b *binder) bindCase(n *ast.Case) (expr.Expr, error) {
	out := &expr.Case{}
	resultT := types.Null
	for _, w := range n.Whens {
		var when ast.Expr = w.When
		if n.Operand != nil {
			// CASE x WHEN v THEN ... lowers to searched form x = v.
			when = &ast.Binary{Op: ast.OpEq, L: n.Operand, R: w.When}
		}
		we, err := b.bind(when)
		if err != nil {
			return nil, err
		}
		if err := requireBoolean(we, "CASE WHEN"); err != nil {
			return nil, err
		}
		te, err := b.bind(w.Then)
		if err != nil {
			return nil, err
		}
		resultT, err = types.Common(resultT, te.Type())
		if err != nil {
			return nil, fmt.Errorf("validate: CASE branches disagree: %v", err)
		}
		out.Whens = append(out.Whens, expr.CaseWhen{When: we, Then: te})
	}
	if n.Else != nil {
		ee, err := b.bind(n.Else)
		if err != nil {
			return nil, err
		}
		resultT, err = types.Common(resultT, ee.Type())
		if err != nil {
			return nil, fmt.Errorf("validate: CASE ELSE disagrees: %v", err)
		}
		out.Else = ee
	}
	out.T = resultT
	return out, nil
}

func (b *binder) bindCall(n *ast.FuncCall) (expr.Expr, error) {
	if n.Over != nil {
		return nil, fmt.Errorf("validate: analytic function %s used where plain expressions are required", n.Name)
	}
	if IsAggregate(n.Name) {
		return nil, fmt.Errorf("validate: aggregate %s is not allowed here", n.Name)
	}
	if n.Name == "HOP" || n.Name == "TUMBLE" {
		return nil, fmt.Errorf("validate: %s is only allowed in GROUP BY", n.Name)
	}
	var (
		minArgs, maxArgs int
		resultType       func([]types.Type) (types.Type, error)
	)
	if fn, ok := expr.Builtins[n.Name]; ok {
		minArgs, maxArgs, resultType = fn.MinArgs, fn.MaxArgs, fn.ResultType
	} else if u, ok := udf.LookupScalar(n.Name); ok {
		minArgs, maxArgs, resultType = u.MinArgs, u.MaxArgs, u.ResultType
	} else {
		return nil, fmt.Errorf("validate: unknown function %s", n.Name)
	}
	if len(n.Args) < minArgs || (maxArgs >= 0 && len(n.Args) > maxArgs) {
		return nil, fmt.Errorf("validate: %s takes %d..%d arguments, got %d",
			n.Name, minArgs, maxArgs, len(n.Args))
	}
	args := make([]expr.Expr, len(n.Args))
	argTypes := make([]types.Type, len(n.Args))
	for i, a := range n.Args {
		ae, err := b.bind(a)
		if err != nil {
			return nil, err
		}
		args[i] = ae
		argTypes[i] = ae.Type()
	}
	rt, err := resultType(argTypes)
	if err != nil {
		return nil, fmt.Errorf("validate: %s: %v", n.Name, err)
	}
	return &expr.Call{Fn: n.Name, Args: args, T: rt}, nil
}

func binOpFor(op ast.BinaryOp) expr.BinOp {
	switch op {
	case ast.OpAdd:
		return expr.Add
	case ast.OpSub:
		return expr.Sub
	case ast.OpMul:
		return expr.Mul
	case ast.OpDiv:
		return expr.Div
	case ast.OpMod:
		return expr.Mod
	case ast.OpConcat:
		return expr.Concat
	case ast.OpEq:
		return expr.Eq
	case ast.OpNeq:
		return expr.Neq
	case ast.OpLt:
		return expr.Lt
	case ast.OpLte:
		return expr.Lte
	case ast.OpGt:
		return expr.Gt
	case ast.OpGte:
		return expr.Gte
	case ast.OpAnd:
		return expr.And
	default:
		return expr.Or
	}
}

func requireBoolean(e expr.Expr, where string) error {
	if e.Type() != types.Boolean && e.Type() != types.Null {
		return fmt.Errorf("validate: %s requires a boolean, got %s", where, e.Type())
	}
	return nil
}

// Package validate resolves and type-checks SamzaSQL statements against a
// catalog, producing bound (column-resolved, typed) expression trees and
// query structure that the planner lowers to physical operators. It enforces
// the streaming rules of §3: STREAM legality, window functions in GROUP BY,
// timestamp requirements for time windows, and emits the
// timestamp-preservation warnings called out as future work in §7.
package validate

import (
	"fmt"

	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/types"
)

// Relation is one FROM-clause input visible in a scope.
type Relation struct {
	// Alias is the name expressions use to qualify columns (the table
	// alias, or the table name itself).
	Alias string
	// Object is the catalog entry for base streams/tables; nil for
	// subqueries and expanded views.
	Object *catalog.Object
	// Sub is the bound subquery for derived relations.
	Sub *BoundSelect
	// Row is the relation's row type.
	Row *types.RowType
	// Offset is where this relation's columns start in the scope's
	// combined row.
	Offset int
	// IsStream reports whether rows keep arriving (stream or view over
	// streams).
	IsStream bool
	// TimestampIdx is the event-time column index within Row, or -1.
	TimestampIdx int
}

// Scope is the namespace for binding expressions: the relations of one
// SELECT's FROM clause, with a combined row layout (left columns then right
// columns for joins).
type Scope struct {
	Rels []*Relation
}

// Combined returns the concatenated row type of all relations.
func (s *Scope) Combined() *types.RowType {
	var cols []types.Column
	for _, r := range s.Rels {
		cols = append(cols, r.Row.Columns...)
	}
	return types.NewRowType(cols...)
}

// resolveColumn finds (relation, column index within relation) for a
// possibly qualified name.
func (s *Scope) resolveColumn(qualifier, name string) (*Relation, int, error) {
	if qualifier != "" {
		for _, r := range s.Rels {
			if equalFold(r.Alias, qualifier) {
				idx := r.Row.Index(name)
				if idx < 0 {
					return nil, 0, fmt.Errorf("validate: column %q not found in %q", name, qualifier)
				}
				return r, idx, nil
			}
		}
		return nil, 0, fmt.Errorf("validate: unknown table or alias %q", qualifier)
	}
	var foundRel *Relation
	foundIdx := -1
	for _, r := range s.Rels {
		idx := r.Row.Index(name)
		if idx < 0 {
			continue
		}
		if foundRel != nil {
			return nil, 0, fmt.Errorf("validate: column %q is ambiguous", name)
		}
		foundRel, foundIdx = r, idx
	}
	if foundRel == nil {
		return nil, 0, fmt.Errorf("validate: column %q not found", name)
	}
	return foundRel, foundIdx, nil
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

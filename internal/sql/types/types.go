// Package types defines SamzaSQL's SQL type system (§3.1): primitive column
// types (integers, floating point, strings, booleans, timestamps), interval
// types for window arithmetic, and nestable collections.
package types

import "fmt"

// Type identifies a SQL value type. Values at runtime are represented as:
// Boolean=bool, Bigint=int64, Double=float64, Varchar=string,
// Timestamp=int64 (Unix millis), Interval=int64 (millis), Array=[]any,
// Map=map[string]any, Null=nil.
type Type int

// Supported types.
const (
	Unknown Type = iota
	Null
	Boolean
	Bigint
	Double
	Varchar
	Timestamp
	Interval
	Array
	Map
	AnyType
)

func (t Type) String() string {
	switch t {
	case Null:
		return "NULL"
	case Boolean:
		return "BOOLEAN"
	case Bigint:
		return "BIGINT"
	case Double:
		return "DOUBLE"
	case Varchar:
		return "VARCHAR"
	case Timestamp:
		return "TIMESTAMP"
	case Interval:
		return "INTERVAL"
	case Array:
		return "ARRAY"
	case Map:
		return "MAP"
	case AnyType:
		return "ANY"
	default:
		return "UNKNOWN"
	}
}

// Numeric reports whether t supports arithmetic.
func (t Type) Numeric() bool {
	return t == Bigint || t == Double || t == Timestamp || t == Interval
}

// Comparable reports whether values of t can be ordered.
func (t Type) Comparable() bool {
	return t.Numeric() || t == Varchar || t == Boolean
}

// ByName resolves a type name from SQL text (used by CAST and catalogs).
func ByName(name string) (Type, error) {
	switch name {
	case "BOOLEAN":
		return Boolean, nil
	case "BIGINT", "INT", "INTEGER", "SMALLINT", "TINYINT":
		return Bigint, nil
	case "DOUBLE", "FLOAT", "REAL", "DECIMAL":
		return Double, nil
	case "VARCHAR", "CHAR", "STRING", "TEXT":
		return Varchar, nil
	case "TIMESTAMP":
		return Timestamp, nil
	case "ANY":
		return AnyType, nil
	default:
		return Unknown, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Common computes the result type when two operand types meet in an
// expression (numeric widening; timestamps and intervals interact with
// bigints as millisecond counts).
func Common(a, b Type) (Type, error) {
	if a == b {
		return a, nil
	}
	if a == Null {
		return b, nil
	}
	if b == Null {
		return a, nil
	}
	if a == AnyType || b == AnyType {
		return AnyType, nil
	}
	if a.Numeric() && b.Numeric() {
		if a == Double || b == Double {
			return Double, nil
		}
		// Timestamp/interval/bigint mix: keep the more specific type.
		switch {
		case a == Timestamp || b == Timestamp:
			return Timestamp, nil
		case a == Interval || b == Interval:
			return Interval, nil
		default:
			return Bigint, nil
		}
	}
	return Unknown, fmt.Errorf("types: no common type for %s and %s", a, b)
}

// Column is a named, typed field of a relation or stream schema.
type Column struct {
	Name string
	Type Type
}

// RowType is an ordered column list — the schema of a relation, stream, or
// intermediate operator output.
type RowType struct {
	Columns []Column
}

// NewRowType builds a row type from columns.
func NewRowType(cols ...Column) *RowType { return &RowType{Columns: cols} }

// Index returns the position of the named column, or -1. Matching is
// case-sensitive first, then case-insensitive unique fallback (SQL
// identifiers are case-insensitive unless quoted).
func (r *RowType) Index(name string) int {
	for i, c := range r.Columns {
		if c.Name == name {
			return i
		}
	}
	match := -1
	for i, c := range r.Columns {
		if equalFold(c.Name, name) {
			if match >= 0 {
				return -1 // ambiguous
			}
			match = i
		}
	}
	return match
}

// Arity returns the number of columns.
func (r *RowType) Arity() int { return len(r.Columns) }

func (r *RowType) String() string {
	s := "("
	for i, c := range r.Columns {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s %s", c.Name, c.Type)
	}
	return s + ")"
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

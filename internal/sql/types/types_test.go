package types

import (
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	cases := map[string]Type{
		"BIGINT": Bigint, "INT": Bigint, "INTEGER": Bigint,
		"DOUBLE": Double, "FLOAT": Double,
		"VARCHAR": Varchar, "STRING": Varchar,
		"BOOLEAN": Boolean, "TIMESTAMP": Timestamp, "ANY": AnyType,
	}
	for name, want := range cases {
		got, err := ByName(name)
		if err != nil || got != want {
			t.Errorf("ByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ByName("FROB"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestCommon(t *testing.T) {
	cases := []struct {
		a, b, want Type
	}{
		{Bigint, Bigint, Bigint},
		{Bigint, Double, Double},
		{Double, Bigint, Double},
		{Null, Varchar, Varchar},
		{Varchar, Null, Varchar},
		{Timestamp, Interval, Timestamp},
		{Bigint, Interval, Interval},
		{Bigint, Timestamp, Timestamp},
		{AnyType, Varchar, AnyType},
	}
	for _, tc := range cases {
		got, err := Common(tc.a, tc.b)
		if err != nil || got != tc.want {
			t.Errorf("Common(%v, %v) = %v, %v; want %v", tc.a, tc.b, got, err, tc.want)
		}
	}
	if _, err := Common(Varchar, Bigint); err == nil {
		t.Error("VARCHAR/BIGINT common type accepted")
	}
	if _, err := Common(Boolean, Bigint); err == nil {
		t.Error("BOOLEAN/BIGINT common type accepted")
	}
}

func TestPredicates(t *testing.T) {
	if !Bigint.Numeric() || !Timestamp.Numeric() || !Interval.Numeric() || !Double.Numeric() {
		t.Error("numeric predicate broken")
	}
	if Varchar.Numeric() || Boolean.Numeric() {
		t.Error("non-numeric type reported numeric")
	}
	if !Varchar.Comparable() || !Boolean.Comparable() || !Bigint.Comparable() {
		t.Error("comparable predicate broken")
	}
	if Array.Comparable() || Map.Comparable() {
		t.Error("collection types reported comparable")
	}
}

func TestRowTypeIndex(t *testing.T) {
	r := NewRowType(
		Column{Name: "rowtime", Type: Timestamp},
		Column{Name: "productId", Type: Bigint},
	)
	if r.Arity() != 2 {
		t.Fatalf("arity %d", r.Arity())
	}
	if r.Index("rowtime") != 0 || r.Index("productId") != 1 {
		t.Fatal("exact lookup broken")
	}
	// Case-insensitive fallback.
	if r.Index("PRODUCTID") != 1 {
		t.Fatal("case-insensitive lookup broken")
	}
	if r.Index("nope") != -1 {
		t.Fatal("missing column resolved")
	}
	// Ambiguity under case folding.
	amb := NewRowType(Column{Name: "a"}, Column{Name: "A"})
	if amb.Index("a") != 0 {
		t.Fatal("exact match must win over fold")
	}
	if got := amb.Index("a"); got != 0 {
		t.Fatalf("Index(a) = %d", got)
	}
}

func TestRowTypeString(t *testing.T) {
	r := NewRowType(Column{Name: "a", Type: Bigint}, Column{Name: "b", Type: Varchar})
	s := r.String()
	if !strings.Contains(s, "a BIGINT") || !strings.Contains(s, "b VARCHAR") {
		t.Fatalf("String() = %q", s)
	}
}

func TestTypeString(t *testing.T) {
	for _, tc := range []struct {
		tp   Type
		want string
	}{{Bigint, "BIGINT"}, {Null, "NULL"}, {Unknown, "UNKNOWN"}, {Array, "ARRAY"}, {Map, "MAP"}} {
		if tc.tp.String() != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.tp, tc.tp.String(), tc.want)
		}
	}
}

// Package token defines the lexical tokens of SamzaSQL's dialect: standard
// SQL plus the streaming extensions of §3 (the STREAM keyword, INTERVAL and
// TIME literals for window specifications, HOP/TUMBLE appear as ordinary
// identifiers resolved by the validator).
package token

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and names.
	IDENT  // orders, productId
	QIDENT // "quoted identifier"
	NUMBER // 123, 1.5
	STRING // 'text'

	// Operators and punctuation.
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	PERCENT   // %
	EQ        // =
	NEQ       // <> or !=
	LT        // <
	LTE       // <=
	GT        // >
	GTE       // >=
	LPAREN    // (
	RPAREN    // )
	COMMA     // ,
	DOT       // .
	SEMICOLON // ;
	CONCAT    // ||

	// Keywords.
	kwStart
	SELECT
	STREAM
	FROM
	WHERE
	GROUP
	BY
	HAVING
	ORDER
	ASC
	DESC
	LIMIT
	AS
	JOIN
	INNER
	LEFT
	RIGHT
	FULL
	OUTER
	ON
	AND
	OR
	NOT
	BETWEEN
	IN
	IS
	NULL
	TRUE
	FALSE
	LIKE
	CASE
	WHEN
	THEN
	ELSE
	END
	CAST
	INTERVAL
	TIME
	TO
	OVER
	PARTITION
	RANGE
	ROWS
	PRECEDING
	FOLLOWING
	CURRENT
	ROW
	UNBOUNDED
	CREATE
	VIEW
	INSERT
	INTO
	VALUES
	DISTINCT
	ALL
	UNION
	EXISTS
	YEAR
	MONTH
	DAY
	HOUR
	MINUTE
	SECOND
	kwEnd
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF",
	IDENT: "IDENT", QIDENT: "QIDENT", NUMBER: "NUMBER", STRING: "STRING",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	EQ: "=", NEQ: "<>", LT: "<", LTE: "<=", GT: ">", GTE: ">=",
	LPAREN: "(", RPAREN: ")", COMMA: ",", DOT: ".", SEMICOLON: ";", CONCAT: "||",
	SELECT: "SELECT", STREAM: "STREAM", FROM: "FROM", WHERE: "WHERE",
	GROUP: "GROUP", BY: "BY", HAVING: "HAVING", ORDER: "ORDER",
	ASC: "ASC", DESC: "DESC", LIMIT: "LIMIT", AS: "AS",
	JOIN: "JOIN", INNER: "INNER", LEFT: "LEFT", RIGHT: "RIGHT", FULL: "FULL",
	OUTER: "OUTER", ON: "ON", AND: "AND", OR: "OR", NOT: "NOT",
	BETWEEN: "BETWEEN", IN: "IN", IS: "IS", NULL: "NULL",
	TRUE: "TRUE", FALSE: "FALSE", LIKE: "LIKE",
	CASE: "CASE", WHEN: "WHEN", THEN: "THEN", ELSE: "ELSE", END: "END",
	CAST: "CAST", INTERVAL: "INTERVAL", TIME: "TIME", TO: "TO",
	OVER: "OVER", PARTITION: "PARTITION", RANGE: "RANGE", ROWS: "ROWS",
	PRECEDING: "PRECEDING", FOLLOWING: "FOLLOWING", CURRENT: "CURRENT",
	ROW: "ROW", UNBOUNDED: "UNBOUNDED",
	CREATE: "CREATE", VIEW: "VIEW", INSERT: "INSERT", INTO: "INTO",
	VALUES: "VALUES", DISTINCT: "DISTINCT", ALL: "ALL", UNION: "UNION",
	EXISTS: "EXISTS",
	YEAR:   "YEAR", MONTH: "MONTH", DAY: "DAY",
	HOUR: "HOUR", MINUTE: "MINUTE", SECOND: "SECOND",
}

// String returns the token kind's display name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// keywords maps upper-cased keyword text to its kind.
var keywords = map[string]Kind{}

func init() {
	for k := kwStart + 1; k < kwEnd; k++ {
		keywords[kindNames[k]] = k
	}
}

// KeywordKind returns the keyword kind for upper-cased text, or IDENT.
func KeywordKind(upper string) Kind {
	if k, ok := keywords[upper]; ok {
		return k
	}
	return IDENT
}

// IsKeyword reports whether k is a keyword kind.
func (k Kind) IsKeyword() bool { return k > kwStart && k < kwEnd }

// Position is a 1-based line and column in the query text.
type Position struct {
	Line int
	Col  int
}

func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexeme with its source position.
type Token struct {
	Kind Kind
	// Text is the raw lexeme; for STRING the quotes are stripped and
	// doubled quotes unescaped, for QIDENT the double quotes are stripped.
	Text string
	Pos  Position
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, QIDENT, NUMBER, STRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

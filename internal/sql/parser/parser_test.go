package parser

import (
	"strings"
	"testing"

	"samzasql/internal/sql/ast"
)

func parseSelect(t *testing.T, src string) *ast.SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	sel, ok := stmt.(*ast.SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", src, stmt)
	}
	return sel
}

func TestListing1SelectStreamStar(t *testing.T) {
	sel := parseSelect(t, "SELECT STREAM * FROM Orders")
	if !sel.Stream {
		t.Fatal("STREAM keyword lost")
	}
	if len(sel.Items) != 1 || !sel.Items[0].Star {
		t.Fatalf("items %+v", sel.Items)
	}
	tn, ok := sel.From.(*ast.TableName)
	if !ok || tn.Name != "Orders" {
		t.Fatalf("from %+v", sel.From)
	}
}

func TestListing2FilterProjection(t *testing.T) {
	sel := parseSelect(t, `
		SELECT STREAM rowtime, productId, units
		FROM Orders
		WHERE units > 25;`)
	if len(sel.Items) != 3 {
		t.Fatalf("items %v", sel.Items)
	}
	b, ok := sel.Where.(*ast.Binary)
	if !ok || b.Op != ast.OpGt {
		t.Fatalf("where %v", sel.Where)
	}
	if id, ok := b.L.(*ast.Ident); !ok || id.Column() != "units" {
		t.Fatalf("where lhs %v", b.L)
	}
	if n, ok := b.R.(*ast.NumberLit); !ok || !n.IsInt || n.Int != 25 {
		t.Fatalf("where rhs %v", b.R)
	}
}

func TestListing3ViewWithAggregates(t *testing.T) {
	stmt, err := Parse(`
		CREATE VIEW HourlyOrderTotals (rowtime, productId, c, su) AS
		  SELECT FLOOR(rowtime TO HOUR),
		    productId,
		    COUNT(*),
		    SUM(units)
		  FROM Orders
		  GROUP BY FLOOR(rowtime TO HOUR), productId`)
	if err != nil {
		t.Fatal(err)
	}
	view, ok := stmt.(*ast.CreateViewStmt)
	if !ok || view.Name != "HourlyOrderTotals" || len(view.Columns) != 4 {
		t.Fatalf("view %+v", stmt)
	}
	if len(view.Select.GroupBy) != 2 {
		t.Fatalf("group by %v", view.Select.GroupBy)
	}
	if _, ok := view.Select.GroupBy[0].(*ast.FloorTo); !ok {
		t.Fatalf("group by[0] = %T", view.Select.GroupBy[0])
	}
	if cnt, ok := view.Select.Items[2].Expr.(*ast.FuncCall); !ok || !cnt.Star || cnt.Name != "COUNT" {
		t.Fatalf("COUNT(*) parsed as %v", view.Select.Items[2].Expr)
	}
}

func TestListing3Subquery(t *testing.T) {
	sel := parseSelect(t, `
		SELECT STREAM rowtime, productId
		FROM (
		  SELECT FLOOR(rowtime TO HOUR) AS rowtime,
		    productId,
		    COUNT(*) AS c,
		    SUM(units) AS su
		  FROM Orders
		  GROUP BY FLOOR(rowtime TO HOUR), productId)
		WHERE c > 2 OR su > 10`)
	sub, ok := sel.From.(*ast.SubqueryRef)
	if !ok {
		t.Fatalf("from = %T", sel.From)
	}
	if sub.Select.Stream {
		t.Fatal("inner query must not be a stream query")
	}
	or, ok := sel.Where.(*ast.Binary)
	if !ok || or.Op != ast.OpOr {
		t.Fatalf("where %v", sel.Where)
	}
}

func TestListing4Tumble(t *testing.T) {
	sel := parseSelect(t, `
		SELECT STREAM START(rowtime), COUNT(*)
		FROM Orders
		GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)`)
	call, ok := sel.GroupBy[0].(*ast.FuncCall)
	if !ok || call.Name != "TUMBLE" || len(call.Args) != 2 {
		t.Fatalf("group by %v", sel.GroupBy[0])
	}
	iv, ok := call.Args[1].(*ast.IntervalLit)
	if !ok || iv.Millis != 3600_000 {
		t.Fatalf("interval %v", call.Args[1])
	}
	start, ok := sel.Items[0].Expr.(*ast.FuncCall)
	if !ok || start.Name != "START" {
		t.Fatalf("START aggregate parsed as %v", sel.Items[0].Expr)
	}
}

func TestListing5HopWithAlignment(t *testing.T) {
	sel := parseSelect(t, `
		SELECT STREAM START(rowtime), COUNT(*)
		FROM Orders
		GROUP BY HOP(rowtime,
		  INTERVAL '1:30' HOUR TO MINUTE,
		  INTERVAL '2' HOUR, TIME '0:30')`)
	call, ok := sel.GroupBy[0].(*ast.FuncCall)
	if !ok || call.Name != "HOP" || len(call.Args) != 4 {
		t.Fatalf("group by %v", sel.GroupBy[0])
	}
	emit := call.Args[1].(*ast.IntervalLit)
	if emit.Millis != 90*60*1000 {
		t.Fatalf("emit interval %d ms", emit.Millis)
	}
	retain := call.Args[2].(*ast.IntervalLit)
	if retain.Millis != 2*3600*1000 {
		t.Fatalf("retain interval %d ms", retain.Millis)
	}
	align := call.Args[3].(*ast.TimeLit)
	if align.Millis != 30*60*1000 {
		t.Fatalf("alignment %d ms", align.Millis)
	}
}

func TestListing6SlidingWindow(t *testing.T) {
	sel := parseSelect(t, `
		SELECT STREAM rowtime, productId, units,
		  SUM(units) OVER (PARTITION BY productId ORDER BY rowtime
		    RANGE INTERVAL '1' HOUR PRECEDING) unitsLastHour
		FROM Orders`)
	call, ok := sel.Items[3].Expr.(*ast.FuncCall)
	if !ok || call.Name != "SUM" || call.Over == nil {
		t.Fatalf("item %v", sel.Items[3].Expr)
	}
	if sel.Items[3].Alias != "unitsLastHour" {
		t.Fatalf("alias %q", sel.Items[3].Alias)
	}
	w := call.Over
	if len(w.PartitionBy) != 1 || len(w.OrderBy) != 1 || w.Frame == nil {
		t.Fatalf("window %+v", w)
	}
	if w.Frame.Unit != ast.FrameRange {
		t.Fatal("frame unit not RANGE")
	}
	iv := w.Frame.Preceding.(*ast.IntervalLit)
	if iv.Millis != 3600_000 {
		t.Fatalf("frame bound %d", iv.Millis)
	}
}

func TestListing7StreamToStreamJoin(t *testing.T) {
	sel := parseSelect(t, `
		SELECT STREAM
		  GREATEST(PacketsR1.rowtime, PacketsR2.rowtime) AS rowtime,
		  PacketsR1.sourcetime,
		  PacketsR1.packetId,
		  PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel
		FROM PacketsR1
		JOIN PacketsR2 ON
		  PacketsR1.rowtime BETWEEN
		    PacketsR2.rowtime - INTERVAL '2' SECOND
		    AND PacketsR2.rowtime + INTERVAL '2' SECOND
		  AND PacketsR1.packetId = PacketsR2.packetId`)
	join, ok := sel.From.(*ast.JoinRef)
	if !ok || join.Kind != ast.InnerJoin {
		t.Fatalf("from %T", sel.From)
	}
	and, ok := join.On.(*ast.Binary)
	if !ok || and.Op != ast.OpAnd {
		t.Fatalf("on %v", join.On)
	}
	if _, ok := and.L.(*ast.Between); !ok {
		t.Fatalf("on left %T", and.L)
	}
}

func TestListing8StreamToRelationJoin(t *testing.T) {
	sel := parseSelect(t, `
		SELECT STREAM
		  Orders.rowtime, Orders.orderId, Orders.productId, Orders.units,
		  Products.supplierId
		FROM Orders
		JOIN Products ON Orders.productId = Products.productId`)
	join := sel.From.(*ast.JoinRef)
	eq, ok := join.On.(*ast.Binary)
	if !ok || eq.Op != ast.OpEq {
		t.Fatalf("on %v", join.On)
	}
	if len(sel.Items) != 5 {
		t.Fatalf("items %v", sel.Items)
	}
}

func TestInsertInto(t *testing.T) {
	stmt, err := Parse("INSERT INTO BigOrders SELECT STREAM * FROM Orders WHERE units > 100")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*ast.InsertStmt)
	if ins.Target != "BigOrders" || !ins.Select.Stream {
		t.Fatalf("insert %+v", ins)
	}
}

func TestHaving(t *testing.T) {
	sel := parseSelect(t, `
		SELECT productId, COUNT(*) c FROM Orders
		GROUP BY productId HAVING COUNT(*) > 5`)
	if sel.Having == nil {
		t.Fatal("HAVING lost")
	}
}

func TestCaseExpressions(t *testing.T) {
	sel := parseSelect(t, `
		SELECT CASE WHEN units > 100 THEN 'big' WHEN units > 10 THEN 'mid' ELSE 'small' END AS label,
		       CASE productId WHEN 1 THEN 'one' ELSE 'other' END
		FROM Orders`)
	c1 := sel.Items[0].Expr.(*ast.Case)
	if c1.Operand != nil || len(c1.Whens) != 2 || c1.Else == nil {
		t.Fatalf("case1 %+v", c1)
	}
	c2 := sel.Items[1].Expr.(*ast.Case)
	if c2.Operand == nil || len(c2.Whens) != 1 {
		t.Fatalf("case2 %+v", c2)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	sel := parseSelect(t, "SELECT a + b * c - d FROM T")
	// Expect (a + (b*c)) - d
	sub := sel.Items[0].Expr.(*ast.Binary)
	if sub.Op != ast.OpSub {
		t.Fatalf("top op %v", sub.Op)
	}
	add := sub.L.(*ast.Binary)
	if add.Op != ast.OpAdd {
		t.Fatalf("left op %v", add.Op)
	}
	mul := add.R.(*ast.Binary)
	if mul.Op != ast.OpMul {
		t.Fatalf("inner op %v", mul.Op)
	}
}

func TestLogicalPrecedence(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM T WHERE a = 1 OR b = 2 AND c = 3")
	or := sel.Where.(*ast.Binary)
	if or.Op != ast.OpOr {
		t.Fatalf("top %v", or.Op)
	}
	and := or.R.(*ast.Binary)
	if and.Op != ast.OpAnd {
		t.Fatalf("right %v", and.Op)
	}
}

func TestNotVariants(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM T WHERE a NOT BETWEEN 1 AND 2 AND b NOT IN (1,2) AND c NOT LIKE 'x%' AND d IS NOT NULL AND NOT e`)
	s := sel.Where.String()
	for _, want := range []string{"NOT BETWEEN", "NOT IN", "NOT LIKE", "IS NOT NULL", "(NOT e)"} {
		if !strings.Contains(s, want) {
			t.Errorf("where %s missing %s", s, want)
		}
	}
}

func TestCastAndConcat(t *testing.T) {
	sel := parseSelect(t, "SELECT CAST(units AS DOUBLE), name || '!' FROM T")
	c := sel.Items[0].Expr.(*ast.Cast)
	if c.TypeName != "DOUBLE" {
		t.Fatalf("cast %+v", c)
	}
	cc := sel.Items[1].Expr.(*ast.Binary)
	if cc.Op != ast.OpConcat {
		t.Fatalf("concat %+v", cc)
	}
}

func TestIntervalValidation(t *testing.T) {
	bad := []string{
		"SELECT INTERVAL 'x' HOUR FROM T",
		"SELECT INTERVAL '1:30' MINUTE TO HOUR FROM T", // TO must be finer
		"SELECT INTERVAL '1' HOUR TO MINUTE FROM T",    // needs 2 fields
		"SELECT TIME '99' FROM T",                      // needs h:mm
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM T",
		"SELECT * FROM",
		"SELECT * FROM T JOIN",
		"SELECT * FROM T JOIN U",
		"SELECT * FROM T WHERE",
		"UPDATE T SET a = 1",
		"SELECT * FROM T; garbage",
		"SELECT a FROM T GROUP",
		"SELECT CASE END FROM T",
		"SELECT SUM(units) OVER (ORDER BY t DESC) FROM T",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE VIEW V AS SELECT * FROM T;
		SELECT STREAM * FROM V;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("%d statements", len(stmts))
	}
	if _, ok := stmts[0].(*ast.CreateViewStmt); !ok {
		t.Fatalf("stmt0 %T", stmts[0])
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	sel := parseSelect(t, `SELECT "weird name" FROM "My Table"`)
	id := sel.Items[0].Expr.(*ast.Ident)
	if id.Column() != "weird name" {
		t.Fatalf("ident %v", id)
	}
	tn := sel.From.(*ast.TableName)
	if tn.Name != "My Table" {
		t.Fatalf("table %v", tn)
	}
}

// Round-trip property: parse → print → parse yields an identical tree
// (compared via printed form).
func TestPrintReparseRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT STREAM * FROM Orders",
		"SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 25",
		"SELECT STREAM START(rowtime), COUNT(*) FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)",
		"SELECT STREAM START(rowtime), COUNT(*) FROM Orders GROUP BY HOP(rowtime, INTERVAL '1:30' HOUR TO MINUTE, INTERVAL '2' HOUR, TIME '0:30')",
		"SELECT STREAM rowtime, SUM(units) OVER (PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '5' MINUTE PRECEDING) u FROM Orders",
		"SELECT STREAM o.rowtime FROM Orders AS o JOIN Products AS p ON o.productId = p.productId",
		"CREATE VIEW V (a, b) AS SELECT rowtime, units FROM Orders",
		"INSERT INTO Out SELECT STREAM * FROM Orders WHERE units BETWEEN 1 AND 10",
		"SELECT CASE WHEN a THEN 1 ELSE 2 END FROM T",
		"SELECT * FROM (SELECT a, COUNT(*) c FROM T GROUP BY a) WHERE c > 2 OR c < 1",
		"SELECT DISTINCT a FROM T HAVING COUNT(*) > 1",
		"SELECT a FROM T WHERE b IS NULL AND c IN (1, 2, 3) AND d LIKE 'x%'",
	}
	for _, q := range queries {
		s1, err := Parse(q)
		if err != nil {
			t.Errorf("Parse(%q): %v", q, err)
			continue
		}
		printed := s1.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q (printed %q): %v", q, printed, err)
			continue
		}
		if s2.String() != printed {
			t.Errorf("round trip unstable:\n  1: %s\n  2: %s", printed, s2.String())
		}
	}
}

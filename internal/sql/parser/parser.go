// Package parser implements a recursive-descent parser for SamzaSQL's
// dialect (§3): standard SQL SELECT with the STREAM keyword, joins with
// windowed ON conditions, GROUP BY with HOP/TUMBLE calls, analytic functions
// with OVER windows, CREATE VIEW, and INSERT INTO ... SELECT.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"samzasql/internal/sql/ast"
	"samzasql/internal/sql/lexer"
	"samzasql/internal/sql/token"
)

// Error is a parse error with position.
type Error struct {
	Pos token.Position
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("parse error at %s: %s", e.Pos, e.Msg) }

// Parser consumes a token stream.
type Parser struct {
	toks []token.Token
	pos  int
}

// New builds a parser over src, running the lexer eagerly.
func New(src string) (*Parser, error) {
	toks, err := lexer.New(src).Tokens()
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks}, nil
}

// Parse parses a single statement from src (a trailing semicolon is
// allowed).
func Parse(src string) (ast.Statement, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	stmt, err := p.ParseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(token.SEMICOLON)
	if !p.at(token.EOF) {
		return nil, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]ast.Statement, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	var out []ast.Statement
	for {
		for p.accept(token.SEMICOLON) {
		}
		if p.at(token.EOF) {
			return out, nil
		}
		stmt, err := p.ParseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
		if !p.at(token.SEMICOLON) && !p.at(token.EOF) {
			return nil, p.errorf("unexpected %s after statement", p.peek())
		}
	}
}

func (p *Parser) peek() token.Token { return p.toks[p.pos] }

func (p *Parser) peekAt(n int) token.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) at(k token.Kind) bool { return p.peek().Kind == k }

func (p *Parser) advance() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) (token.Token, error) {
	if p.at(k) {
		return p.advance(), nil
	}
	return token.Token{}, p.errorf("expected %s, found %s", k, p.peek())
}

func (p *Parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

// ParseStatement parses one statement.
func (p *Parser) ParseStatement() (ast.Statement, error) {
	switch p.peek().Kind {
	case token.SELECT:
		return p.parseSelect()
	case token.CREATE:
		return p.parseCreateView()
	case token.INSERT:
		return p.parseInsert()
	default:
		return nil, p.errorf("expected SELECT, CREATE VIEW or INSERT, found %s", p.peek())
	}
}

func (p *Parser) parseCreateView() (ast.Statement, error) {
	if _, err := p.expect(token.CREATE); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.VIEW); err != nil {
		return nil, err
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.accept(token.LPAREN) {
		for {
			c, err := p.parseName()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.accept(token.COMMA) {
				break
			}
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.AS); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &ast.CreateViewStmt{Name: name, Columns: cols, Select: sel}, nil
}

func (p *Parser) parseInsert() (ast.Statement, error) {
	if _, err := p.expect(token.INSERT); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.INTO); err != nil {
		return nil, err
	}
	target, err := p.parseName()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.accept(token.LPAREN) {
		for {
			c, err := p.parseName()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.accept(token.COMMA) {
				break
			}
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &ast.InsertStmt{Target: target, Columns: cols, Select: sel}, nil
}

// parseName accepts an identifier or quoted identifier.
func (p *Parser) parseName() (string, error) {
	if p.at(token.IDENT) || p.at(token.QIDENT) {
		return p.advance().Text, nil
	}
	return "", p.errorf("expected identifier, found %s", p.peek())
}

func (p *Parser) parseSelect() (*ast.SelectStmt, error) {
	if _, err := p.expect(token.SELECT); err != nil {
		return nil, err
	}
	sel := &ast.SelectStmt{}
	if p.accept(token.STREAM) {
		sel.Stream = true
	}
	if p.accept(token.DISTINCT) {
		sel.Distinct = true
	} else {
		p.accept(token.ALL)
	}
	items, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	sel.Items = items

	if p.accept(token.FROM) {
		from, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.accept(token.WHERE) {
		w, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.at(token.GROUP) {
		p.advance()
		if _, err := p.expect(token.BY); err != nil {
			return nil, err
		}
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(token.COMMA) {
				break
			}
		}
	}
	if p.accept(token.HAVING) {
		h, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	return sel, nil
}

func (p *Parser) parseSelectList() ([]ast.SelectItem, error) {
	var items []ast.SelectItem
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if !p.accept(token.COMMA) {
			return items, nil
		}
	}
}

func (p *Parser) parseSelectItem() (ast.SelectItem, error) {
	if p.at(token.STAR) {
		p.advance()
		return ast.SelectItem{Star: true}, nil
	}
	// alias.*
	if (p.at(token.IDENT) || p.at(token.QIDENT)) &&
		p.peekAt(1).Kind == token.DOT && p.peekAt(2).Kind == token.STAR {
		tbl := p.advance().Text
		p.advance()
		p.advance()
		return ast.SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.ParseExpr()
	if err != nil {
		return ast.SelectItem{}, err
	}
	item := ast.SelectItem{Expr: e}
	if p.accept(token.AS) {
		a, err := p.parseName()
		if err != nil {
			return ast.SelectItem{}, err
		}
		item.Alias = a
	} else if p.at(token.IDENT) || p.at(token.QIDENT) {
		item.Alias = p.advance().Text
	}
	return item, nil
}

// parseTableRef parses a FROM item including chained joins.
func (p *Parser) parseTableRef() (ast.TableRef, error) {
	left, err := p.parsePrimaryTableRef()
	if err != nil {
		return nil, err
	}
	for {
		kind, isJoin := p.peekJoin()
		if !isJoin {
			return left, nil
		}
		right, err := p.parsePrimaryTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.ON); err != nil {
			return nil, err
		}
		on, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		left = &ast.JoinRef{Kind: kind, Left: left, Right: right, On: on}
	}
}

// peekJoin consumes join keywords if present and returns the join kind.
func (p *Parser) peekJoin() (ast.JoinKind, bool) {
	switch p.peek().Kind {
	case token.JOIN:
		p.advance()
		return ast.InnerJoin, true
	case token.INNER:
		p.advance()
		p.accept(token.JOIN)
		return ast.InnerJoin, true
	case token.LEFT:
		p.advance()
		p.accept(token.OUTER)
		p.accept(token.JOIN)
		return ast.LeftJoin, true
	case token.RIGHT:
		p.advance()
		p.accept(token.OUTER)
		p.accept(token.JOIN)
		return ast.RightJoin, true
	case token.FULL:
		p.advance()
		p.accept(token.OUTER)
		p.accept(token.JOIN)
		return ast.FullJoin, true
	default:
		return ast.InnerJoin, false
	}
}

func (p *Parser) parsePrimaryTableRef() (ast.TableRef, error) {
	if p.accept(token.LPAREN) {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		ref := &ast.SubqueryRef{Select: sel}
		if p.accept(token.AS) {
			a, err := p.parseName()
			if err != nil {
				return nil, err
			}
			ref.Alias = a
		} else if p.at(token.IDENT) || p.at(token.QIDENT) {
			ref.Alias = p.advance().Text
		}
		return ref, nil
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	ref := &ast.TableName{Name: name}
	if p.accept(token.AS) {
		a, err := p.parseName()
		if err != nil {
			return nil, err
		}
		ref.Alias = a
	} else if p.at(token.IDENT) || p.at(token.QIDENT) {
		ref.Alias = p.advance().Text
	}
	return ref, nil
}

// --- expressions (precedence climbing) ---

// ParseExpr parses an expression.
func (p *Parser) ParseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(token.OR) {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: ast.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(token.AND) {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: ast.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (ast.Expr, error) {
	if p.accept(token.NOT) {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: ast.OpNot, X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (ast.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Kind {
		case token.EQ, token.NEQ, token.LT, token.LTE, token.GT, token.GTE:
			op := comparisonOp(p.advance().Kind)
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.Binary{Op: op, L: l, R: r}
		case token.BETWEEN:
			p.advance()
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.AND); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.Between{X: l, Lo: lo, Hi: hi}
		case token.IN:
			p.advance()
			list, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			l = &ast.InList{X: l, List: list}
		case token.IS:
			p.advance()
			not := p.accept(token.NOT)
			if _, err := p.expect(token.NULL); err != nil {
				return nil, err
			}
			l = &ast.IsNull{X: l, Not: not}
		case token.LIKE:
			p.advance()
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.Like{X: l, Pattern: pat}
		case token.NOT:
			// X NOT BETWEEN / NOT IN / NOT LIKE
			switch p.peekAt(1).Kind {
			case token.BETWEEN:
				p.advance()
				p.advance()
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(token.AND); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &ast.Between{Not: true, X: l, Lo: lo, Hi: hi}
			case token.IN:
				p.advance()
				p.advance()
				list, err := p.parseExprList()
				if err != nil {
					return nil, err
				}
				l = &ast.InList{Not: true, X: l, List: list}
			case token.LIKE:
				p.advance()
				p.advance()
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &ast.Like{Not: true, X: l, Pattern: pat}
			default:
				return l, nil
			}
		default:
			return l, nil
		}
	}
}

func comparisonOp(k token.Kind) ast.BinaryOp {
	switch k {
	case token.EQ:
		return ast.OpEq
	case token.NEQ:
		return ast.OpNeq
	case token.LT:
		return ast.OpLt
	case token.LTE:
		return ast.OpLte
	case token.GT:
		return ast.OpGt
	default:
		return ast.OpGte
	}
}

func (p *Parser) parseExprList() ([]ast.Expr, error) {
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	var out []ast.Expr
	for {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.accept(token.COMMA) {
			break
		}
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) parseAdditive() (ast.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinaryOp
		switch p.peek().Kind {
		case token.PLUS:
			op = ast.OpAdd
		case token.MINUS:
			op = ast.OpSub
		case token.CONCAT:
			op = ast.OpConcat
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMultiplicative() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinaryOp
		switch p.peek().Kind {
		case token.STAR:
			op = ast.OpMul
		case token.SLASH:
			op = ast.OpDiv
		case token.PERCENT:
			op = ast.OpMod
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	if p.accept(token.MINUS) {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: ast.OpNeg, X: x}, nil
	}
	p.accept(token.PLUS) // unary plus is a no-op
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	switch p.peek().Kind {
	case token.NUMBER:
		return p.parseNumber()
	case token.STRING:
		return &ast.StringLit{V: p.advance().Text}, nil
	case token.TRUE:
		p.advance()
		return &ast.BoolLit{V: true}, nil
	case token.FALSE:
		p.advance()
		return &ast.BoolLit{V: false}, nil
	case token.NULL:
		p.advance()
		return &ast.NullLit{}, nil
	case token.INTERVAL:
		return p.parseInterval()
	case token.TIME:
		return p.parseTimeLit()
	case token.CASE:
		return p.parseCase()
	case token.CAST:
		return p.parseCast()
	case token.EXISTS:
		p.advance()
		if _, err := p.expect(token.LPAREN); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return &ast.Subquery{Exists: true, Select: sel}, nil
	case token.LPAREN:
		p.advance()
		if p.at(token.SELECT) {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RPAREN); err != nil {
				return nil, err
			}
			return &ast.Subquery{Select: sel}, nil
		}
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case token.IDENT, token.QIDENT:
		return p.parseIdentOrCall()
	case token.END:
		// END is both a keyword and the paper's window-end aggregate
		// function (§3.6); treat END( as a call.
		if p.peekAt(1).Kind == token.LPAREN {
			p.advance()
			return p.parseCallNamed("END")
		}
	}
	return nil, p.errorf("unexpected %s in expression", p.peek())
}

func (p *Parser) parseNumber() (ast.Expr, error) {
	t := p.advance()
	if !strings.ContainsAny(t.Text, ".eE") {
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err == nil {
			return &ast.NumberLit{Text: t.Text, IsInt: true, Int: v, Float: float64(v)}, nil
		}
	}
	f, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return nil, &Error{Pos: t.Pos, Msg: fmt.Sprintf("bad number %q", t.Text)}
	}
	return &ast.NumberLit{Text: t.Text, Float: f}, nil
}

func (p *Parser) parseTimeUnit() (ast.TimeUnit, error) {
	switch p.peek().Kind {
	case token.YEAR:
		p.advance()
		return ast.UnitYear, nil
	case token.MONTH:
		p.advance()
		return ast.UnitMonth, nil
	case token.DAY:
		p.advance()
		return ast.UnitDay, nil
	case token.HOUR:
		p.advance()
		return ast.UnitHour, nil
	case token.MINUTE:
		p.advance()
		return ast.UnitMinute, nil
	case token.SECOND:
		p.advance()
		return ast.UnitSecond, nil
	default:
		return 0, p.errorf("expected time unit, found %s", p.peek())
	}
}

// parseInterval handles INTERVAL 'v' UNIT [TO UNIT] (Listings 5, 7).
func (p *Parser) parseInterval() (ast.Expr, error) {
	if _, err := p.expect(token.INTERVAL); err != nil {
		return nil, err
	}
	lit, err := p.expect(token.STRING)
	if err != nil {
		return nil, err
	}
	unit, err := p.parseTimeUnit()
	if err != nil {
		return nil, err
	}
	iv := &ast.IntervalLit{Text: lit.Text, Unit: unit}
	if p.accept(token.TO) {
		to, err := p.parseTimeUnit()
		if err != nil {
			return nil, err
		}
		if to <= unit {
			return nil, &Error{Pos: lit.Pos, Msg: fmt.Sprintf("interval TO unit %s must be finer than %s", to, unit)}
		}
		iv.ToUnit = &to
	}
	millis, err := resolveInterval(iv)
	if err != nil {
		return nil, &Error{Pos: lit.Pos, Msg: err.Error()}
	}
	iv.Millis = millis
	return iv, nil
}

// resolveInterval computes the millisecond duration of an interval literal.
// Single-unit form: integer count of Unit. Two-unit form: colon-separated
// components from Unit down to ToUnit (e.g. '1:30' HOUR TO MINUTE).
func resolveInterval(iv *ast.IntervalLit) (int64, error) {
	if iv.ToUnit == nil {
		n, err := strconv.ParseFloat(strings.TrimSpace(iv.Text), 64)
		if err != nil {
			return 0, fmt.Errorf("bad interval value %q", iv.Text)
		}
		return int64(n * float64(iv.Unit.Millis())), nil
	}
	parts := strings.Split(iv.Text, ":")
	units := unitsBetween(iv.Unit, *iv.ToUnit)
	if len(parts) != len(units) {
		return 0, fmt.Errorf("interval %q has %d fields, %s TO %s needs %d",
			iv.Text, len(parts), iv.Unit, *iv.ToUnit, len(units))
	}
	var total int64
	for i, part := range parts {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad interval field %q", part)
		}
		total += n * units[i].Millis()
	}
	return total, nil
}

// unitsBetween lists units from coarse to fine inclusive.
func unitsBetween(from, to ast.TimeUnit) []ast.TimeUnit {
	var out []ast.TimeUnit
	for u := from; u <= to; u++ {
		out = append(out, u)
	}
	return out
}

// parseTimeLit handles TIME 'h:mm[:ss]' used as HOP alignment (Listing 5).
func (p *Parser) parseTimeLit() (ast.Expr, error) {
	if _, err := p.expect(token.TIME); err != nil {
		return nil, err
	}
	lit, err := p.expect(token.STRING)
	if err != nil {
		return nil, err
	}
	parts := strings.Split(lit.Text, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, &Error{Pos: lit.Pos, Msg: fmt.Sprintf("bad time literal %q", lit.Text)}
	}
	var total int64
	scale := []int64{3600 * 1000, 60 * 1000, 1000}
	for i, part := range parts {
		n, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || n < 0 {
			return nil, &Error{Pos: lit.Pos, Msg: fmt.Sprintf("bad time field %q", part)}
		}
		total += n * scale[i]
	}
	return &ast.TimeLit{Text: lit.Text, Millis: total}, nil
}

func (p *Parser) parseCase() (ast.Expr, error) {
	if _, err := p.expect(token.CASE); err != nil {
		return nil, err
	}
	c := &ast.Case{}
	if !p.at(token.WHEN) {
		op, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.accept(token.WHEN) {
		w, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.THEN); err != nil {
			return nil, err
		}
		t, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.WhenClause{When: w, Then: t})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.accept(token.ELSE) {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(token.END); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseCast() (ast.Expr, error) {
	if _, err := p.expect(token.CAST); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	x, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.AS); err != nil {
		return nil, err
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	return &ast.Cast{X: x, TypeName: strings.ToUpper(name)}, nil
}

// parseIdentOrCall parses an identifier chain or a function call.
func (p *Parser) parseIdentOrCall() (ast.Expr, error) {
	name := p.advance().Text
	if p.at(token.LPAREN) {
		return p.parseCallNamed(strings.ToUpper(name))
	}
	parts := []string{name}
	for p.at(token.DOT) && (p.peekAt(1).Kind == token.IDENT || p.peekAt(1).Kind == token.QIDENT) {
		p.advance()
		parts = append(parts, p.advance().Text)
	}
	return &ast.Ident{Parts: parts}, nil
}

// parseCallNamed parses the argument list and optional OVER clause of a
// call whose (upper-cased) name is already consumed.
func (p *Parser) parseCallNamed(name string) (ast.Expr, error) {
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	call := &ast.FuncCall{Name: name}
	if name == "FLOOR" {
		// FLOOR(x TO unit) is a dedicated node; FLOOR(x) stays a call.
		x, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(token.TO) {
			unit, err := p.parseTimeUnit()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RPAREN); err != nil {
				return nil, err
			}
			return &ast.FloorTo{X: x, Unit: unit}, nil
		}
		call.Args = append(call.Args, x)
		for p.accept(token.COMMA) {
			a, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return call, nil
	}
	if p.at(token.STAR) {
		p.advance()
		call.Star = true
	} else if !p.at(token.RPAREN) {
		if p.accept(token.DISTINCT) {
			call.Distinct = true
		}
		for {
			a, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if !p.accept(token.COMMA) {
				break
			}
		}
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	if p.accept(token.OVER) {
		over, err := p.parseWindowSpec()
		if err != nil {
			return nil, err
		}
		call.Over = over
	}
	return call, nil
}

func (p *Parser) parseWindowSpec() (*ast.WindowSpec, error) {
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	w := &ast.WindowSpec{}
	if p.accept(token.PARTITION) {
		if _, err := p.expect(token.BY); err != nil {
			return nil, err
		}
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			w.PartitionBy = append(w.PartitionBy, e)
			if !p.accept(token.COMMA) {
				break
			}
		}
	}
	if p.accept(token.ORDER) {
		if _, err := p.expect(token.BY); err != nil {
			return nil, err
		}
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			// ASC/DESC tolerated; streams are time-ordered ascending.
			p.accept(token.ASC)
			if p.at(token.DESC) {
				return nil, p.errorf("DESC ordering is not supported over streams")
			}
			w.OrderBy = append(w.OrderBy, e)
			if !p.accept(token.COMMA) {
				break
			}
		}
	}
	if p.at(token.RANGE) || p.at(token.ROWS) {
		frame := &ast.WindowFrame{}
		if p.advance().Kind == token.ROWS {
			frame.Unit = ast.FrameRows
		}
		if p.accept(token.UNBOUNDED) {
			if _, err := p.expect(token.PRECEDING); err != nil {
				return nil, err
			}
		} else if p.accept(token.CURRENT) {
			if _, err := p.expect(token.ROW); err != nil {
				return nil, err
			}
			frame.Preceding = ast.NewIntLit(0)
		} else {
			b, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.PRECEDING); err != nil {
				return nil, err
			}
			frame.Preceding = b
		}
		w.Frame = frame
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	return w, nil
}

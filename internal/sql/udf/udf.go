// Package udf provides the user-defined function API the paper lists as
// future work (§7, item four: "a concrete API to define user defined
// aggregates even though it is theoretically possible"). Scalar functions
// plug into the expression compiler; aggregate functions plug into both the
// streaming aggregate operator (GROUP BY) and the sliding window operator
// (OVER), including state snapshot/restore so UDAF state participates in
// changelog-backed fault tolerance like the builtins.
package udf

import (
	"fmt"
	"sort"
	"sync"

	"samzasql/internal/sql/types"
)

// Scalar is a user-defined scalar function.
type Scalar struct {
	// Name is the upper-case SQL name.
	Name string
	// MinArgs/MaxArgs bound the argument count (MaxArgs < 0 = variadic).
	MinArgs, MaxArgs int
	// ResultType computes the result type from argument types.
	ResultType func(args []types.Type) (types.Type, error)
	// Eval computes the value. Arguments may be nil (SQL NULL); returning
	// (nil, nil) yields NULL.
	Eval func(args []any) (any, error)
}

// AggregateState is the running state of one user-defined aggregate
// instance over one group or window partition.
type AggregateState interface {
	// Add folds one input value in. v may be nil (SQL NULL).
	Add(v any) error
	// Remove unfolds one value; only called when Invertible reports true
	// (the sliding window operator rebuilds non-invertible aggregates by
	// rescanning the retained window, exactly as it does for MIN/MAX).
	Remove(v any) error
	// Invertible reports whether Remove fully maintains the aggregate.
	Invertible() bool
	// Value returns the aggregate's current SQL value.
	Value() any
	// Snapshot flattens the state to a row of serializable values
	// (int64/float64/string/bool/nil/nested []any) for the changelog.
	Snapshot() []any
	// Restore rebuilds the state from a Snapshot row.
	Restore(row []any) error
}

// Aggregate is a user-defined aggregate function definition.
type Aggregate struct {
	// Name is the upper-case SQL name.
	Name string
	// ResultType computes the result type from the argument type.
	ResultType func(arg types.Type) (types.Type, error)
	// New creates fresh state.
	New func() AggregateState
}

var (
	mu         sync.RWMutex
	scalars    = map[string]*Scalar{}
	aggregates = map[string]*Aggregate{}
)

// RegisterScalar installs a scalar UDF. Names must be unique among UDFs;
// shadowing a builtin is rejected by the validator at bind time.
func RegisterScalar(s *Scalar) error {
	if s.Name == "" || s.ResultType == nil || s.Eval == nil {
		return fmt.Errorf("udf: scalar function needs name, result type and eval")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := scalars[s.Name]; dup {
		return fmt.Errorf("udf: scalar %q already registered", s.Name)
	}
	scalars[s.Name] = s
	return nil
}

// RegisterAggregate installs a UDAF.
func RegisterAggregate(a *Aggregate) error {
	if a.Name == "" || a.ResultType == nil || a.New == nil {
		return fmt.Errorf("udf: aggregate needs name, result type and factory")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := aggregates[a.Name]; dup {
		return fmt.Errorf("udf: aggregate %q already registered", a.Name)
	}
	aggregates[a.Name] = a
	return nil
}

// LookupScalar resolves a scalar UDF by upper-case name.
func LookupScalar(name string) (*Scalar, bool) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := scalars[name]
	return s, ok
}

// LookupAggregate resolves a UDAF by upper-case name.
func LookupAggregate(name string) (*Aggregate, bool) {
	mu.RLock()
	defer mu.RUnlock()
	a, ok := aggregates[name]
	return a, ok
}

// Names lists all registered UDF names, sorted (scalars then aggregates).
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	var out []string
	for n := range scalars {
		out = append(out, n)
	}
	for n := range aggregates {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Reset removes all registrations (tests only).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	scalars = map[string]*Scalar{}
	aggregates = map[string]*Aggregate{}
}

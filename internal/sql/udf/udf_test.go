package udf

import (
	"fmt"
	"testing"

	"samzasql/internal/sql/types"
)

// Registration behavior with end-to-end query execution is covered in
// internal/executor's UDF tests; these exercise the registry contract
// directly using Reset (test-only).

func validScalar(name string) *Scalar {
	return &Scalar{
		Name: name, MinArgs: 1, MaxArgs: 1,
		ResultType: func(args []types.Type) (types.Type, error) { return args[0], nil },
		Eval:       func(args []any) (any, error) { return args[0], nil },
	}
}

type noopState struct{ n int64 }

func (s *noopState) Add(any) error    { s.n++; return nil }
func (s *noopState) Remove(any) error { s.n--; return nil }
func (s *noopState) Invertible() bool { return true }
func (s *noopState) Value() any       { return s.n }
func (s *noopState) Snapshot() []any  { return []any{s.n} }
func (s *noopState) Restore(r []any) error {
	if len(r) != 1 {
		return fmt.Errorf("bad snapshot")
	}
	s.n, _ = r[0].(int64)
	return nil
}

func validAggregate(name string) *Aggregate {
	return &Aggregate{
		Name:       name,
		ResultType: func(arg types.Type) (types.Type, error) { return types.Bigint, nil },
		New:        func() AggregateState { return &noopState{} },
	}
}

func TestRegisterAndLookup(t *testing.T) {
	Reset()
	defer Reset()
	if err := RegisterScalar(validScalar("F1")); err != nil {
		t.Fatal(err)
	}
	if err := RegisterAggregate(validAggregate("A1")); err != nil {
		t.Fatal(err)
	}
	if _, ok := LookupScalar("F1"); !ok {
		t.Fatal("scalar not found")
	}
	if _, ok := LookupAggregate("A1"); !ok {
		t.Fatal("aggregate not found")
	}
	if _, ok := LookupScalar("A1"); ok {
		t.Fatal("aggregate resolved as scalar")
	}
	names := Names()
	if len(names) != 2 || names[0] != "A1" || names[1] != "F1" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestRegisterValidation(t *testing.T) {
	Reset()
	defer Reset()
	bad := []*Scalar{
		{},
		{Name: "X"},
		{Name: "X", ResultType: func([]types.Type) (types.Type, error) { return types.Bigint, nil }},
	}
	for i, s := range bad {
		if err := RegisterScalar(s); err == nil {
			t.Errorf("scalar case %d accepted", i)
		}
	}
	badAgg := []*Aggregate{
		{},
		{Name: "Y"},
		{Name: "Y", ResultType: func(types.Type) (types.Type, error) { return types.Bigint, nil }},
	}
	for i, a := range badAgg {
		if err := RegisterAggregate(a); err == nil {
			t.Errorf("aggregate case %d accepted", i)
		}
	}
}

func TestDuplicateRejected(t *testing.T) {
	Reset()
	defer Reset()
	if err := RegisterScalar(validScalar("DUP")); err != nil {
		t.Fatal(err)
	}
	if err := RegisterScalar(validScalar("DUP")); err == nil {
		t.Fatal("duplicate scalar accepted")
	}
	if err := RegisterAggregate(validAggregate("DUPA")); err != nil {
		t.Fatal(err)
	}
	if err := RegisterAggregate(validAggregate("DUPA")); err == nil {
		t.Fatal("duplicate aggregate accepted")
	}
}

func TestAggregateStateContract(t *testing.T) {
	Reset()
	defer Reset()
	if err := RegisterAggregate(validAggregate("N")); err != nil {
		t.Fatal(err)
	}
	def, _ := LookupAggregate("N")
	s := def.New()
	for i := 0; i < 5; i++ {
		if err := s.Add(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Value().(int64) != 5 {
		t.Fatalf("value %v", s.Value())
	}
	// Snapshot / restore round trip.
	s2 := def.New()
	if err := s2.Restore(s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if s2.Value().(int64) != 5 {
		t.Fatalf("restored value %v", s2.Value())
	}
}

package catalog

import (
	"errors"
	"strings"
	"testing"

	"samzasql/internal/avro"
	"samzasql/internal/registry"
	"samzasql/internal/sql/types"
)

func ordersObject() *Object {
	return &Object{
		Kind: Stream, Name: "Orders", Topic: "orders", TimestampCol: "rowtime",
		Row: types.NewRowType(
			types.Column{Name: "rowtime", Type: types.Timestamp},
			types.Column{Name: "units", Type: types.Bigint},
		),
	}
}

func TestDefineAndResolve(t *testing.T) {
	c := New()
	if err := c.Define(ordersObject()); err != nil {
		t.Fatal(err)
	}
	o, err := c.Resolve("Orders")
	if err != nil || o.Topic != "orders" {
		t.Fatalf("Resolve: %+v %v", o, err)
	}
	// Case-insensitive fallback.
	o, err = c.Resolve("orders")
	if err != nil || o.Name != "Orders" {
		t.Fatalf("case-insensitive Resolve: %+v %v", o, err)
	}
	if _, err := c.Resolve("Nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown: %v", err)
	}
}

func TestDefineValidation(t *testing.T) {
	c := New()
	if err := c.Define(&Object{Kind: Stream, Name: ""}); err == nil {
		t.Fatal("unnamed object accepted")
	}
	if err := c.Define(&Object{Kind: Stream, Name: "S"}); err == nil {
		t.Fatal("stream without row type accepted")
	}
	bad := ordersObject()
	bad.TimestampCol = "missing"
	if err := c.Define(bad); err == nil || !strings.Contains(err.Error(), "timestamp") {
		t.Fatalf("bad timestamp column: %v", err)
	}
}

func TestAmbiguousCaseInsensitive(t *testing.T) {
	c := New()
	a := ordersObject()
	a.Name = "orders"
	b := ordersObject()
	b.Name = "ORDERS"
	if err := c.Define(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Define(b); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve("Orders"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous resolve: %v", err)
	}
	// Exact match still wins.
	if o, err := c.Resolve("orders"); err != nil || o.Name != "orders" {
		t.Fatalf("exact resolve: %+v %v", o, err)
	}
}

func TestLoadModel(t *testing.T) {
	doc := `{
	  "schemas": [
	    {"name": "Orders", "kind": "stream", "topic": "orders",
	     "timestamp": "rowtime",
	     "columns": [
	       {"name": "rowtime", "type": "TIMESTAMP"},
	       {"name": "productId", "type": "BIGINT"},
	       {"name": "units", "type": "BIGINT"}
	     ]},
	    {"name": "Products", "kind": "table",
	     "columns": [
	       {"name": "productId", "type": "BIGINT"},
	       {"name": "name", "type": "VARCHAR"}
	     ]}
	  ]
	}`
	c := New()
	if err := c.LoadModel([]byte(doc)); err != nil {
		t.Fatal(err)
	}
	o, err := c.Resolve("Orders")
	if err != nil || o.Kind != Stream || o.TimestampCol != "rowtime" || o.Row.Arity() != 3 {
		t.Fatalf("Orders: %+v %v", o, err)
	}
	p, err := c.Resolve("Products")
	if err != nil || p.Kind != Table || p.Topic != "Products" {
		t.Fatalf("Products: %+v %v", p, err)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "Orders" {
		t.Fatalf("Names: %v", names)
	}
}

func TestLoadModelErrors(t *testing.T) {
	c := New()
	for _, doc := range []string{
		`not json`,
		`{"schemas":[{"name":"X","kind":"frob","columns":[]}]}`,
		`{"schemas":[{"name":"X","kind":"stream","columns":[{"name":"a","type":"WAT"}]}]}`,
	} {
		if err := c.LoadModel([]byte(doc)); err == nil {
			t.Errorf("LoadModel(%q) succeeded", doc)
		}
	}
}

func TestAvroSchemaBridge(t *testing.T) {
	o := ordersObject()
	s, err := AvroSchemaFor(o)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != avro.KindRecord || len(s.Fields) != 2 {
		t.Fatalf("schema %+v", s)
	}
	if s.Fields[0].Schema.Kind != avro.KindLong || s.Fields[1].Schema.Kind != avro.KindLong {
		t.Fatalf("field kinds %v %v", s.Fields[0].Schema.Kind, s.Fields[1].Schema.Kind)
	}
	row, err := RowTypeFromAvro(s)
	if err != nil {
		t.Fatal(err)
	}
	// Timestamps flatten to BIGINT on the wire; names survive.
	if row.Columns[0].Name != "rowtime" || row.Columns[0].Type != types.Bigint {
		t.Fatalf("round-tripped row %v", row)
	}
}

func TestDefineFromRegistry(t *testing.T) {
	reg := registry.New()
	schema := avro.Record("orders",
		avro.F("rowtime", avro.Long()),
		avro.F("units", avro.Long()),
		avro.F("note", avro.String()),
	)
	if _, err := reg.Register("orders", schema); err != nil {
		t.Fatal(err)
	}
	c := New()
	if err := c.DefineFromRegistry(reg, Stream, "Orders", "orders"); err != nil {
		t.Fatal(err)
	}
	o, err := c.Resolve("Orders")
	if err != nil {
		t.Fatal(err)
	}
	if o.TimestampCol != "rowtime" {
		t.Fatalf("rowtime not auto-detected: %+v", o)
	}
	if o.Row.Arity() != 3 || o.Row.Columns[2].Type != types.Varchar {
		t.Fatalf("row %v", o.Row)
	}
	if err := c.DefineFromRegistry(reg, Stream, "X", "missing"); err == nil {
		t.Fatal("unknown subject accepted")
	}
}

// Package catalog holds the metadata the query planner needs: which names
// are streams, tables or views, their row types, their backing Kafka topics
// and Avro schemas, and which column carries the event timestamp. SamzaSQL
// assembles this from Calcite-style JSON model files plus the schema
// registry (§3.2, §4.1); this package supports both sources.
package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"samzasql/internal/avro"
	"samzasql/internal/registry"
	"samzasql/internal/sql/ast"
	"samzasql/internal/sql/types"
)

// ObjectKind distinguishes streams, tables and views.
type ObjectKind int

// Object kinds.
const (
	// Stream is an unbounded partitioned sequence of tuples (§3.1).
	Stream ObjectKind = iota
	// Table is a relation, reachable as a changelog stream (§3.1, §4.4).
	Table
	// View is a named query (§3.5).
	View
)

func (k ObjectKind) String() string {
	switch k {
	case Stream:
		return "stream"
	case Table:
		return "table"
	default:
		return "view"
	}
}

// Object is one catalog entry.
type Object struct {
	Kind ObjectKind
	Name string
	// Row is the object's schema. For views it is derived at validation.
	Row *types.RowType
	// Topic is the backing Kafka topic: the stream's topic, or the table's
	// changelog topic.
	Topic string
	// TimestampCol names the event-time column ("rowtime" by convention);
	// required on streams for window queries (§3).
	TimestampCol string
	// PartitionKeyCol names the column the publisher keys messages by
	// (§3.1: "How a stream is partitioned is defined by the publisher at
	// publishing time"). Empty means unknown; the planner then assumes
	// joins are co-partitioned. When set, joins on a different column
	// trigger automatic repartitioning (§7 future work 1).
	PartitionKeyCol string
	// Def is the view definition for Kind == View.
	Def *ast.SelectStmt
}

// ErrNotFound is returned for unknown object names.
var ErrNotFound = errors.New("catalog: object not found")

// Catalog maps names to objects. Lookup is case-insensitive with
// case-sensitive priority, like SQL identifiers.
type Catalog struct {
	mu      sync.RWMutex
	objects map[string]*Object
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{objects: map[string]*Object{}}
}

// Define adds or replaces an object.
func (c *Catalog) Define(o *Object) error {
	if o.Name == "" {
		return errors.New("catalog: object needs a name")
	}
	if o.Kind != View && o.Row == nil {
		return fmt.Errorf("catalog: %s %q needs a row type", o.Kind, o.Name)
	}
	if o.Kind == Stream && o.Row != nil && o.TimestampCol != "" {
		if o.Row.Index(o.TimestampCol) < 0 {
			return fmt.Errorf("catalog: stream %q timestamp column %q not in schema",
				o.Name, o.TimestampCol)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.objects[o.Name] = o
	return nil
}

// Resolve finds an object by name (case-insensitive fallback).
func (c *Catalog) Resolve(name string) (*Object, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if o, ok := c.objects[name]; ok {
		return o, nil
	}
	var match *Object
	for n, o := range c.objects {
		if equalFold(n, name) {
			if match != nil {
				return nil, fmt.Errorf("catalog: name %q is ambiguous", name)
			}
			match = o
		}
	}
	if match == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return match, nil
}

// Names returns all object names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.objects))
	for n := range c.objects {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// --- JSON model files (Calcite-style) ---

// modelFile is the JSON document shape.
type modelFile struct {
	Schemas []modelObject `json:"schemas"`
}

type modelObject struct {
	Name         string        `json:"name"`
	Kind         string        `json:"kind"` // "stream" or "table"
	Topic        string        `json:"topic"`
	Timestamp    string        `json:"timestamp,omitempty"`
	PartitionKey string        `json:"partitionKey,omitempty"`
	Columns      []modelColumn `json:"columns"`
}

type modelColumn struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// LoadModel parses a JSON model document into the catalog.
func (c *Catalog) LoadModel(doc []byte) error {
	var m modelFile
	if err := json.Unmarshal(doc, &m); err != nil {
		return fmt.Errorf("catalog: bad model file: %w", err)
	}
	for _, obj := range m.Schemas {
		var kind ObjectKind
		switch obj.Kind {
		case "stream":
			kind = Stream
		case "table":
			kind = Table
		default:
			return fmt.Errorf("catalog: object %q has kind %q (want stream or table)", obj.Name, obj.Kind)
		}
		cols := make([]types.Column, 0, len(obj.Columns))
		for _, mc := range obj.Columns {
			t, err := types.ByName(mc.Type)
			if err != nil {
				return fmt.Errorf("catalog: object %q column %q: %w", obj.Name, mc.Name, err)
			}
			cols = append(cols, types.Column{Name: mc.Name, Type: t})
		}
		topic := obj.Topic
		if topic == "" {
			topic = obj.Name
		}
		o := &Object{
			Kind:            kind,
			Name:            obj.Name,
			Row:             types.NewRowType(cols...),
			Topic:           topic,
			TimestampCol:    obj.Timestamp,
			PartitionKeyCol: obj.PartitionKey,
		}
		if err := c.Define(o); err != nil {
			return err
		}
	}
	return nil
}

// --- Avro schema bridging ---

// AvroSchemaFor derives the Avro record schema used on the wire for an
// object's rows. All columns encode as nullable-free primitives except
// explicitly nullable SQL types (we map every VARCHAR and numeric directly;
// NULL handling on the wire would use nullable unions).
func AvroSchemaFor(o *Object) (*avro.Schema, error) {
	if o.Row == nil {
		return nil, fmt.Errorf("catalog: %q has no row type", o.Name)
	}
	fields := make([]avro.Field, 0, o.Row.Arity())
	for _, col := range o.Row.Columns {
		var fs *avro.Schema
		switch col.Type {
		case types.Bigint, types.Timestamp, types.Interval:
			fs = avro.Long()
		case types.Double:
			fs = avro.Double()
		case types.Varchar:
			fs = avro.String()
		case types.Boolean:
			fs = avro.Boolean()
		case types.AnyType:
			fs = avro.Bytes()
		default:
			return nil, fmt.Errorf("catalog: column %q has unmappable type %s", col.Name, col.Type)
		}
		fields = append(fields, avro.F(col.Name, fs))
	}
	return avro.Record(o.Name, fields...), nil
}

// RowTypeFromAvro converts a registered Avro record schema into a SQL row
// type, the inverse bridge used when schemas come from the registry.
func RowTypeFromAvro(s *avro.Schema) (*types.RowType, error) {
	if s.Kind != avro.KindRecord {
		return nil, errors.New("catalog: avro schema is not a record")
	}
	cols := make([]types.Column, 0, len(s.Fields))
	for _, f := range s.Fields {
		var t types.Type
		switch f.Schema.Kind {
		case avro.KindLong, avro.KindInt:
			t = types.Bigint
		case avro.KindDouble, avro.KindFloat:
			t = types.Double
		case avro.KindString:
			t = types.Varchar
		case avro.KindBoolean:
			t = types.Boolean
		case avro.KindBytes:
			t = types.AnyType
		default:
			return nil, fmt.Errorf("catalog: field %q has unmappable avro kind %s", f.Name, f.Schema.Kind)
		}
		cols = append(cols, types.Column{Name: f.Name, Type: t})
	}
	return types.NewRowType(cols...), nil
}

// DefineFromRegistry registers an object whose schema lives in the schema
// registry under subject (the topic name by convention). Timestamp columns
// named "rowtime" are detected automatically.
func (c *Catalog) DefineFromRegistry(reg *registry.Registry, kind ObjectKind, name, topic string) error {
	latest, err := reg.Latest(topic)
	if err != nil {
		return err
	}
	row, err := RowTypeFromAvro(latest.Schema)
	if err != nil {
		return err
	}
	tsCol := ""
	if row.Index("rowtime") >= 0 {
		tsCol = "rowtime"
	}
	return c.Define(&Object{
		Kind:         kind,
		Name:         name,
		Row:          row,
		Topic:        topic,
		TimestampCol: tsCol,
	})
}

// Package physical lowers a logical plan to a SamzaSQL program: the scan /
// operator / insert chain (Figure 4), the message router wiring, the input
// stream set with bootstrap flags, and the store declarations the Samza job
// needs. It is the second half of the paper's two-step planning (§4.2):
// the same compilation runs in the shell (to derive the job configuration)
// and inside each SamzaSQL task at initialization (to build operators).
package physical

import (
	"fmt"

	"samzasql/internal/avro"
	"samzasql/internal/operators"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/plan"
	"samzasql/internal/sql/types"
)

// Input describes one source stream of the program.
type Input struct {
	Topic string
	// Bootstrap marks relation changelogs consumed before stream input.
	Bootstrap bool
	// Scan decodes messages from this topic.
	Scan *operators.ScanOp
}

// Program is a compiled query ready to run inside a task (or the bounded
// local executor).
type Program struct {
	Inputs      []*Input
	Router      *operators.Router
	OutputTopic string
	OutputCodec *avro.Codec
	OutputRow   *types.RowType
	// Stores lists the task-local stores the operators need.
	Stores []samza.StoreSpec
	// Repartitions lists the re-keying stages the engine must run as
	// upstream jobs before the main job (§7 future work 1).
	Repartitions []*RepartitionSpec
	// Streaming reports whether any scan is unbounded.
	Streaming bool
	// Stages lists the instrumented stage names in compile order (plus
	// "fastpath" when the fused path compiles), the keys under which the
	// registry holds "operator.<stage>.*" metrics — what EXPLAIN ANALYZE
	// walks to annotate the plan with live counts and latencies.
	Stages []string
	// insert is the sink operator; its sender is bound via SetSender.
	insert *operators.InsertOp
	// aggregate is non-nil when the plan aggregates; the bounded executor
	// uses FlushAggregate at end of input. aggDownstream is the compiled
	// chain above the aggregate (having filter, projection, insert).
	aggregate     *operators.StreamAggregateOp
	aggDownstream operators.Emit
	// fast is non-nil when the plan compiled to the fused fast path (§7's
	// proposed SamzaSQL-specific code generation; see fastpath.go).
	fast *fastProgram
	// stageSeq numbers repeated operator kinds during compilation so every
	// instrumented stage gets a unique metric name.
	stageSeq map[string]int

	// Vectorized block pipelines (see block.go): one entry per input topic,
	// compiled alongside the scalar router by threading a BlockEmit through
	// build. Every operator kind has a block path — filter/project refine or
	// compact selections, the stateful stages (aggregate, sliding window,
	// joins) cluster each block by key and batch their state reads — so
	// every topic a plan consumes gets an entry and RouteBatch never falls
	// back to per-tuple routing for compiled plans.
	blockInputs map[string]*blockInput
	// blockArena and btrace are the task-owned reusable block and stage-span
	// log RouteBatch drives the chain with.
	blockArena operators.TupleBlock
	btrace     operators.BlockTrace
}

// instrument wraps op for per-operator latency/output metrics and registers
// the wrapper with the router (the wrapper forwards Open to op). The first
// stage of a kind is named after the kind; repeats get "#n" suffixes.
func (p *Program) instrument(kind string, op operators.Operator) *operators.Instrumented {
	if p.stageSeq == nil {
		p.stageSeq = map[string]int{}
	}
	n := p.stageSeq[kind]
	p.stageSeq[kind]++
	name := kind
	if n > 0 {
		name = fmt.Sprintf("%s#%d", kind, n)
	}
	inst := operators.NewInstrumented(name, op)
	p.Stages = append(p.Stages, name)
	p.Router.Register(inst)
	return inst
}

// FastPath reports whether the program uses the fused fast path.
func (p *Program) FastPath() bool { return p.fast != nil }

// FlushAggregate closes all open windows through the post-aggregate chain.
// No-op for plans without aggregation.
func (p *Program) FlushAggregate() error {
	if p.aggregate == nil {
		return nil
	}
	return p.aggregate.FlushFinal(p.aggDownstream)
}

// SetSender binds the output sink to a message collector.
func (p *Program) SetSender(s operators.Sender) {
	if p.fast != nil {
		p.fast.send = s
		return
	}
	p.insert.Send = s
}

// SetBatchSender binds the output sink's batched path. Nil unbinds it; the
// block path then falls back to per-row sends through the scalar sender.
func (p *Program) SetBatchSender(bs operators.BatchSender) {
	if p.fast != nil {
		p.fast.sendBatch = bs
		return
	}
	if p.insert != nil {
		p.insert.SendBatch = bs
	}
}

// Aggregate exposes the aggregate operator (nil when the plan has none).
func (p *Program) Aggregate() *operators.StreamAggregateOp { return p.aggregate }

// Options controls compilation.
type Options struct {
	// FastPath enables the fused scan/filter/project/insert path for
	// eligible plans (§7 future work item 5); see fastpath.go.
	FastPath bool
}

// Compile lowers the plan. defaultOutput names the output topic for plain
// SELECTs (INSERT INTO plans carry their own target).
func Compile(root plan.Node, defaultOutput string) (*Program, error) {
	return CompileWithOptions(root, defaultOutput, Options{})
}

// CompileWithOptions lowers the plan with explicit options.
func CompileWithOptions(root plan.Node, defaultOutput string, opts Options) (*Program, error) {
	prog := &Program{Router: operators.NewRouter()}

	target := defaultOutput
	body := root
	if ins, ok := root.(*plan.Insert); ok {
		target = ins.Target
		body = ins.Input
	}
	if target == "" {
		return nil, fmt.Errorf("physical: no output topic for query")
	}
	if opts.FastPath {
		if ok, err := prog.tryFastPath(body, target); err != nil {
			return nil, err
		} else if ok {
			return prog, nil
		}
	}
	outRow := body.Row()
	outCodec, err := codecFor("Output", outRow, true)
	if err != nil {
		return nil, err
	}
	prog.OutputTopic = target
	prog.OutputRow = outRow
	prog.OutputCodec = outCodec
	prog.insert = &operators.InsertOp{Codec: outCodec, Target: target}
	insInst := prog.instrument("insert", prog.insert)
	// The insert op invokes emit per sent message, so the counting emit
	// built here gives "operator.insert.out" = messages actually produced.
	insEmit := insInst.WrapEmit(func(*operators.Tuple) error { return nil })
	sink := func(t *operators.Tuple) error {
		return insInst.Process(0, t, insEmit)
	}
	// The block pipeline compiles next to the scalar chain: the same
	// instrumented sink, fed whole blocks.
	insBlockEmit := insInst.WrapBlockEmit(func(*operators.TupleBlock) error { return nil })
	blockSink := func(b *operators.TupleBlock) error {
		return insInst.ProcessBlock(0, b, insBlockEmit)
	}
	if err := prog.build(body, sink, blockSink); err != nil {
		return nil, err
	}
	// Aggregate outputs partition by group key (tuples carry it); other
	// plans preserve the source partition.
	if prog.aggregate != nil {
		prog.insert.KeyByTupleKey = true
	}
	return prog, nil
}

// blockStage wraps one instrumented operator as a block pipeline stage
// feeding blockDown on the given input side. A nil blockDown (no vectorized
// path downstream) propagates, leaving the subtree's scans on the per-tuple
// router.
func (p *Program) blockStage(inst *operators.Instrumented, side int, blockDown operators.BlockEmit) operators.BlockEmit {
	if blockDown == nil {
		return nil
	}
	emitTo := inst.WrapBlockEmit(blockDown)
	return func(b *operators.TupleBlock) error {
		return inst.ProcessBlock(side, b, emitTo)
	}
}

// build wires the plan node's operator and recurses to its inputs.
// downstream receives the node's output tuples; blockDown receives its
// output blocks on the vectorized pipeline compiled alongside.
func (p *Program) build(n plan.Node, downstream operators.Emit, blockDown operators.BlockEmit) error {
	switch t := n.(type) {
	case *plan.Scan:
		return p.buildScan(t, downstream, blockDown)
	case *plan.Filter:
		op, err := operators.NewFilterOp(t.Cond)
		if err != nil {
			return err
		}
		inst := p.instrument("filter", op)
		emitTo := inst.WrapEmit(downstream)
		return p.build(t.Input, func(tp *operators.Tuple) error {
			return inst.Process(0, tp, emitTo)
		}, p.blockStage(inst, 0, blockDown))
	case *plan.Project:
		tsIdx := -1
		for i, c := range t.Row().Columns {
			if c.Type == types.Timestamp {
				tsIdx = i
				break
			}
		}
		op, err := operators.NewProjectOp(t.Exprs, tsIdx)
		if err != nil {
			return err
		}
		// SELECT *: every expression is its own input column, in order. The
		// block path then passes rows through (raw encodings included),
		// letting the insert raw-forward filter-only chains.
		if identity := t.Exprs != nil && len(t.Exprs) == t.Input.Row().Arity(); identity {
			for i, e := range t.Exprs {
				c, ok := e.(*expr.ColRef)
				if !ok || c.Idx != i {
					identity = false
					break
				}
			}
			op.Identity = identity
		}
		inst := p.instrument("project", op)
		emitTo := inst.WrapEmit(downstream)
		return p.build(t.Input, func(tp *operators.Tuple) error {
			return inst.Process(0, tp, emitTo)
		}, p.blockStage(inst, 0, blockDown))
	case *plan.Aggregate:
		op, err := operators.NewStreamAggregateOp(t.Keys, t.Window, t.Aggs)
		if err != nil {
			return err
		}
		inst := p.instrument("aggregate", op)
		emitTo := inst.WrapEmit(downstream)
		p.aggregate = op
		// Flushes go through the counting emit too, so final-window rows
		// show up in "operator.aggregate.out".
		p.aggDownstream = emitTo
		p.addStore(operators.AggStoreName)
		return p.build(t.Input, func(tp *operators.Tuple) error {
			return inst.Process(0, tp, emitTo)
		}, p.blockStage(inst, 0, blockDown))
	case *plan.Analytic:
		op, err := operators.NewSlidingWindowOp(t.Calls)
		if err != nil {
			return err
		}
		inst := p.instrument("sliding-window", op)
		emitTo := inst.WrapEmit(downstream)
		p.addStore(operators.SlidingStoreName)
		return p.build(t.Input, func(tp *operators.Tuple) error {
			return inst.Process(0, tp, emitTo)
		}, p.blockStage(inst, 0, blockDown))
	case *plan.Join:
		return p.buildJoin(t, downstream, blockDown)
	case *plan.Insert:
		return fmt.Errorf("physical: nested INSERT is not supported")
	default:
		return fmt.Errorf("physical: unsupported plan node %T", n)
	}
}

func (p *Program) buildScan(s *plan.Scan, downstream operators.Emit, blockDown operators.BlockEmit) error {
	codec, err := catalog.AvroSchemaFor(s.Object)
	if err != nil {
		return err
	}
	c, err := avro.NewCodec(codec)
	if err != nil {
		return err
	}
	tsIdx := -1
	if s.Object.TimestampCol != "" {
		tsIdx = s.Object.Row.Index(s.Object.TimestampCol)
	}
	// A scan marked for repartitioning reads the re-keyed intermediate
	// topic instead of the source; the engine runs the re-keying stage.
	topic := s.Object.Topic
	if s.RepartitionCol != "" {
		var err error
		topic, err = p.planRepartition(s.Object, s.RepartitionCol)
		if err != nil {
			return err
		}
	}
	scan := &operators.ScanOp{Codec: c, TsIdx: tsIdx, Stream: topic}
	p.Router.Register(scan)
	for _, in := range p.Inputs {
		if in.Topic == topic {
			return fmt.Errorf("physical: topic %q appears twice in one query (self-joins need an intermediate stream)", in.Topic)
		}
	}
	p.Inputs = append(p.Inputs, &Input{
		Topic:     topic,
		Bootstrap: s.Bootstrap,
		Scan:      scan,
	})
	if s.Streaming {
		p.Streaming = true
	}
	p.Router.AddEntry(topic, func(t *operators.Tuple) error {
		return downstream(t)
	})
	if blockDown != nil {
		if p.blockInputs == nil {
			p.blockInputs = map[string]*blockInput{}
		}
		p.blockInputs[topic] = &blockInput{scan: scan, entry: blockDown}
	}
	return nil
}

func (p *Program) buildJoin(j *plan.Join, downstream operators.Emit, blockDown operators.BlockEmit) error {
	leftArity := j.Left.Row().Arity()
	rightArity := j.Right.Row().Arity()

	// Classify: a bootstrap scan below either side marks a
	// stream-to-relation join.
	leftBoot := hasBootstrapScan(j.Left)
	rightBoot := hasBootstrapScan(j.Right)

	p.addStore(operators.JoinStoreName)
	switch {
	case leftBoot || rightBoot:
		streamIsLeft := rightBoot
		op, err := operators.NewStreamRelationJoinOp(j.Info, leftArity, rightArity, streamIsLeft)
		if err != nil {
			return err
		}
		inst := p.instrument("stream-relation-join", op)
		emitTo := inst.WrapEmit(downstream)
		// Stream side feeds LeftSide, relation changelog feeds RightSide.
		streamEmit := func(t *operators.Tuple) error {
			return inst.Process(operators.LeftSide, t, emitTo)
		}
		relEmit := func(t *operators.Tuple) error {
			return inst.Process(operators.RightSide, t, emitTo)
		}
		streamBlock := p.blockStage(inst, operators.LeftSide, blockDown)
		relBlock := p.blockStage(inst, operators.RightSide, blockDown)
		if streamIsLeft {
			if err := p.build(j.Left, streamEmit, streamBlock); err != nil {
				return err
			}
			return p.build(j.Right, relEmit, relBlock)
		}
		if err := p.build(j.Left, relEmit, relBlock); err != nil {
			return err
		}
		return p.build(j.Right, streamEmit, streamBlock)
	default:
		op, err := operators.NewStreamStreamJoinOp(j.Info, leftArity, rightArity)
		if err != nil {
			return err
		}
		inst := p.instrument("stream-stream-join", op)
		emitTo := inst.WrapEmit(downstream)
		if err := p.build(j.Left, func(t *operators.Tuple) error {
			return inst.Process(operators.LeftSide, t, emitTo)
		}, p.blockStage(inst, operators.LeftSide, blockDown)); err != nil {
			return err
		}
		return p.build(j.Right, func(t *operators.Tuple) error {
			return inst.Process(operators.RightSide, t, emitTo)
		}, p.blockStage(inst, operators.RightSide, blockDown))
	}
}

func hasBootstrapScan(n plan.Node) bool {
	if s, ok := n.(*plan.Scan); ok {
		return s.Bootstrap
	}
	for _, c := range n.Inputs() {
		if hasBootstrapScan(c) {
			return true
		}
	}
	return false
}

func (p *Program) addStore(name string) {
	for _, s := range p.Stores {
		if s.Name == name {
			return
		}
	}
	p.Stores = append(p.Stores, samza.StoreSpec{Name: name, Changelog: true})
}

// codecFor builds an Avro codec for a row type. nullable makes every field
// optional (aggregate outputs can be NULL).
func codecFor(name string, row *types.RowType, nullable bool) (*avro.Codec, error) {
	fields := make([]avro.Field, 0, row.Arity())
	for _, col := range row.Columns {
		var fs *avro.Schema
		switch col.Type {
		case types.Bigint, types.Timestamp, types.Interval:
			fs = avro.Long()
		case types.Double:
			fs = avro.Double()
		case types.Varchar:
			fs = avro.String()
		case types.Boolean:
			fs = avro.Boolean()
		case types.Null, types.AnyType:
			fs = avro.String().AsNullable()
		default:
			return nil, fmt.Errorf("physical: unmappable output type %s for column %q", col.Type, col.Name)
		}
		if nullable && !fs.Nullable {
			fs = fs.AsNullable()
		}
		fields = append(fields, avro.F(col.Name, fs))
	}
	return avro.NewCodec(avro.Record(name, fields...))
}

// RouteMessage decodes one raw message from topic and drives it through the
// router — the per-message path of a SamzaSQL task.
func (p *Program) RouteMessage(topic string, value, key []byte, msgTs int64, partition int32, offset int64) error {
	if p.fast != nil {
		if topic != p.fast.topic {
			return nil
		}
		return p.fast.handle(value, key, msgTs, partition)
	}
	for _, in := range p.Inputs {
		if in.Topic != topic {
			continue
		}
		t, err := in.Scan.Decode(value, key, msgTs, partition, offset)
		if err != nil {
			return err
		}
		return p.Router.Route(topic, t)
	}
	return nil
}

package physical

import (
	"fmt"

	"samzasql/internal/avro"
	"samzasql/internal/sql/catalog"
)

// RepartitionSpec describes one re-keying stage the engine must run as a
// separate Samza job before the main query job (§7 future work 1, and §2's
// observation that Samza DAGs form by "connecting multiple Samza jobs via
// intermediate Kafka streams"). The stage reads SourceTopic, extracts
// KeyCol from each message's wire bytes, and forwards the message unchanged
// to TargetTopic keyed by that column, so the broker's key partitioner
// co-locates join keys.
//
// Repartitioning interleaves each source partition's messages into the new
// partitions: ordering is preserved per source partition but not globally,
// the ordering caveat the paper flags for order-sensitive downstream
// operators.
type RepartitionSpec struct {
	SourceTopic string
	TargetTopic string
	// KeyCol is the column to re-key by.
	KeyCol string
	// Codec decodes the key column from message bytes.
	Codec *avro.Codec
}

// repartitionTopicName derives the deterministic intermediate topic name.
// Determinism lets concurrent queries joining on the same key share one
// repartitioned stream, the sharing benefit §2 attributes to Samza's
// job-chaining architecture.
func repartitionTopicName(topic, keyCol string) string {
	return fmt.Sprintf("%s-repartition-by-%s", topic, keyCol)
}

// planRepartition rewires a repartitioned scan to its intermediate topic
// and records the stage for the engine.
func (p *Program) planRepartition(obj *catalog.Object, keyCol string) (string, error) {
	schema, err := catalog.AvroSchemaFor(obj)
	if err != nil {
		return "", err
	}
	codec, err := avro.NewCodec(schema)
	if err != nil {
		return "", err
	}
	if obj.Row.Index(keyCol) < 0 {
		return "", fmt.Errorf("physical: repartition key %q not in %q", keyCol, obj.Name)
	}
	target := repartitionTopicName(obj.Topic, keyCol)
	for _, r := range p.Repartitions {
		if r.TargetTopic == target {
			return target, nil // already planned (shared)
		}
	}
	p.Repartitions = append(p.Repartitions, &RepartitionSpec{
		SourceTopic: obj.Topic,
		TargetTopic: target,
		KeyCol:      keyCol,
		Codec:       codec,
	})
	return target, nil
}

package physical

import (
	"time"

	"samzasql/internal/operators"
	"samzasql/internal/samza"
	"samzasql/internal/trace"
)

// This file is the vectorized side of the program: per-topic block
// pipelines compiled next to the per-tuple router by threading a BlockEmit
// through build. RouteBatch drives one polled batch (always from a single
// topic-partition) through its topic's pipeline — decode once per block,
// each operator's ProcessBlock once per block, the outputs flushed in one
// batched send. Stateful stages (aggregate, sliding window, joins) cluster
// each block by key and batch their state reads (block_stateful.go), so
// every compiled plan's topics run vectorized; the per-tuple fallback only
// covers topics without a compiled entry (the fused fast path handles its
// own batches).

// blockInput is one source topic's vectorized pipeline: the scan that
// decodes its blocks and the compiled per-block chain above it.
type blockInput struct {
	scan  *operators.ScanOp
	entry operators.BlockEmit
}

// Vectorized reports whether the program compiled a per-block pipeline
// (fused kernel or block pipelines); plans without one process batches
// through the per-tuple router.
func (p *Program) Vectorized() bool { return p.fast != nil || len(p.blockInputs) > 0 }

// RouteBatch drives one polled batch through the program — the vectorized
// counterpart of RouteMessage. The envelopes come from a single
// topic-partition in offset order (the consumer's poll contract). act may
// be nil (bounded execution, tests); sampled messages inside the batch get
// their spans replayed at batch granularity with row counts.
//
//samzasql:hotpath
func (p *Program) RouteBatch(envs []samza.IncomingMessageEnvelope, act *trace.Active, pollNs int64) error {
	if len(envs) == 0 {
		return nil
	}
	topic := envs[0].Stream
	if p.fast != nil {
		if topic != p.fast.topic {
			return nil
		}
		return p.fast.handleBlock(envs, act, pollNs)
	}
	bi := p.blockInputs[topic]
	if bi == nil {
		// Per-tuple fallback: route each message with the trace brackets
		// the scalar container loop would have applied.
		for i := range envs {
			env := &envs[i]
			if env.Trace.Sampled {
				act.StartMessage(env.Trace, pollNs, time.Now().UnixNano())
			}
			if err := p.RouteMessage(env.Stream, env.Value, env.Key, env.Timestamp, env.Partition, env.Offset); err != nil {
				return err
			}
			if env.Trace.Sampled {
				act.FinishMessage(time.Now().UnixNano())
			}
		}
		return nil
	}
	b := &p.blockArena
	b.Reset(topic, envs[0].Partition, len(envs))
	sampled := 0
	for i := range envs {
		env := &envs[i]
		b.Raw = append(b.Raw, env.Value)
		b.Keys = append(b.Keys, env.Key)
		b.Ts = append(b.Ts, env.Timestamp)
		b.Offsets = append(b.Offsets, env.Offset)
		if env.Trace.Sampled {
			sampled++
		}
	}
	var startNs int64
	if sampled > 0 {
		p.btrace.Reset()
		b.Trace = &p.btrace
		startNs = time.Now().UnixNano()
	}
	if err := bi.scan.DecodeBlock(b); err != nil {
		return err
	}
	if err := bi.entry(b); err != nil {
		return err
	}
	if sampled > 0 {
		p.replayBlockTrace(envs, act, pollNs, startNs, time.Now().UnixNano())
	}
	return nil
}

// replayBlockTrace reconstructs per-message trace trees for the sampled
// messages of a completed block: each gets its produce/poll/process spans
// plus the block's batch-level operator spans (carrying the row counts they
// covered), so vectorization changes span granularity but never drops
// sampled messages from the trace stream.
func (p *Program) replayBlockTrace(envs []samza.IncomingMessageEnvelope, act *trace.Active, pollNs, startNs, endNs int64) {
	for i := range envs {
		if !envs[i].Trace.Sampled {
			continue
		}
		act.StartMessage(envs[i].Trace, pollNs, startNs)
		for _, sp := range p.btrace.Spans {
			act.StageRows(sp.Stage, sp.StartNs, sp.EndNs, sp.Rows)
		}
		act.FinishMessage(endNs)
	}
}

package physical

import (
	"time"

	"samzasql/internal/operators"
	"samzasql/internal/samza"
	"samzasql/internal/trace"
)

// This file is the vectorized side of the program: a per-block pipeline
// compiled next to the per-tuple router. RouteBatch drives one polled batch
// (always from a single topic-partition) through it — decode once per
// block, each operator's ProcessBlock once per block, the outputs flushed
// in one batched send. Plans the block chain cannot express (aggregates,
// joins, sliding windows, repartitioned scans) fall back to the per-tuple
// path, message by message, with the same trace bracketing the scalar
// container loop would have done.

// buildBlockChain compiles the block pipeline when the plan is linear:
// filter/project stages over one scan into the insert sink. Called at the
// end of CompileWithOptions; leaves blockEntry nil when any stage has no
// vectorized path.
func (p *Program) buildBlockChain(ins *operators.Instrumented) {
	if p.blockNotLinear || p.blockScan == nil || p.aggregate != nil || len(p.Repartitions) > 0 {
		return
	}
	if _, ok := ins.BlockOp(); !ok {
		return
	}
	for _, inst := range p.blockStages {
		if _, ok := inst.BlockOp(); !ok {
			return
		}
	}
	// Fold the chain from the sink upward. blockStages is in top-down
	// compile order (project collected before the filter beneath it), so
	// each iteration wraps the entry built so far as its downstream,
	// leaving the bottom-most stage as the final entry point.
	insEmit := ins.WrapBlockEmit(func(*operators.TupleBlock) error { return nil })
	entry := func(b *operators.TupleBlock) error {
		return ins.ProcessBlock(0, b, insEmit)
	}
	for _, inst := range p.blockStages {
		inst := inst
		downstream := inst.WrapBlockEmit(entry)
		entry = func(b *operators.TupleBlock) error {
			return inst.ProcessBlock(0, b, downstream)
		}
	}
	p.blockEntry = entry
}

// Vectorized reports whether the program compiled a per-block pipeline
// (fused kernel or block chain); plans without one process batches through
// the per-tuple router.
func (p *Program) Vectorized() bool { return p.fast != nil || p.blockEntry != nil }

// RouteBatch drives one polled batch through the program — the vectorized
// counterpart of RouteMessage. The envelopes come from a single
// topic-partition in offset order (the consumer's poll contract). act may
// be nil (bounded execution, tests); sampled messages inside the batch get
// their spans replayed at batch granularity with row counts.
//
//samzasql:hotpath
func (p *Program) RouteBatch(envs []samza.IncomingMessageEnvelope, act *trace.Active, pollNs int64) error {
	if len(envs) == 0 {
		return nil
	}
	topic := envs[0].Stream
	if p.fast != nil {
		if topic != p.fast.topic {
			return nil
		}
		return p.fast.handleBlock(envs, act, pollNs)
	}
	if p.blockEntry == nil || topic != p.blockScan.Stream {
		// Per-tuple fallback: route each message with the trace brackets
		// the scalar container loop would have applied.
		for i := range envs {
			env := &envs[i]
			if env.Trace.Sampled {
				act.StartMessage(env.Trace, pollNs, time.Now().UnixNano())
			}
			if err := p.RouteMessage(env.Stream, env.Value, env.Key, env.Timestamp, env.Partition, env.Offset); err != nil {
				return err
			}
			if env.Trace.Sampled {
				act.FinishMessage(time.Now().UnixNano())
			}
		}
		return nil
	}
	b := &p.blockArena
	b.Reset(topic, envs[0].Partition, len(envs))
	sampled := 0
	for i := range envs {
		env := &envs[i]
		b.Raw = append(b.Raw, env.Value)
		b.Keys = append(b.Keys, env.Key)
		b.Ts = append(b.Ts, env.Timestamp)
		b.Offsets = append(b.Offsets, env.Offset)
		if env.Trace.Sampled {
			sampled++
		}
	}
	var startNs int64
	if sampled > 0 {
		p.btrace.Reset()
		b.Trace = &p.btrace
		startNs = time.Now().UnixNano()
	}
	if err := p.blockScan.DecodeBlock(b); err != nil {
		return err
	}
	if err := p.blockEntry(b); err != nil {
		return err
	}
	if sampled > 0 {
		p.replayBlockTrace(envs, act, pollNs, startNs, time.Now().UnixNano())
	}
	return nil
}

// replayBlockTrace reconstructs per-message trace trees for the sampled
// messages of a completed block: each gets its produce/poll/process spans
// plus the block's batch-level operator spans (carrying the row counts they
// covered), so vectorization changes span granularity but never drops
// sampled messages from the trace stream.
func (p *Program) replayBlockTrace(envs []samza.IncomingMessageEnvelope, act *trace.Active, pollNs, startNs, endNs int64) {
	for i := range envs {
		if !envs[i].Trace.Sampled {
			continue
		}
		act.StartMessage(envs[i].Trace, pollNs, startNs)
		for _, sp := range p.btrace.Spans {
			act.StageRows(sp.Stage, sp.StartNs, sp.EndNs, sp.Rows)
		}
		act.FinishMessage(endNs)
	}
}

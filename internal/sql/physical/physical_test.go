package physical

import (
	"strings"
	"testing"

	"samzasql/internal/avro"

	"samzasql/internal/kv"
	"samzasql/internal/metrics"
	"samzasql/internal/operators"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/parser"
	"samzasql/internal/sql/plan"
	"samzasql/internal/sql/types"
	"samzasql/internal/sql/validate"
	"samzasql/internal/workload"
)

func compile(t *testing.T, query string) *Program {
	t.Helper()
	cat := catalog.New()
	if err := workload.DefineCatalog(cat); err != nil {
		t.Fatal(err)
	}
	stmt, err := parser.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := validate.New(cat).Validate(stmt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(p, "out")
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func openProgram(t *testing.T, prog *Program) *[]capture {
	t.Helper()
	stores := map[string]kv.Store{}
	ctx := &operators.OpContext{
		Store: func(name string) kv.Store {
			s, ok := stores[name]
			if !ok {
				s = kv.NewStore()
				stores[name] = s
			}
			return s
		},
		Metrics: metrics.NewRegistry(),
	}
	if err := prog.Router.Open(ctx); err != nil {
		t.Fatal(err)
	}
	out := &[]capture{}
	prog.SetSender(func(stream string, partition int32, key, value []byte, ts int64) error {
		row, err := prog.OutputCodec.DecodeRow(value, nil)
		if err != nil {
			return err
		}
		*out = append(*out, capture{stream: stream, row: row})
		return nil
	})
	return out
}

type capture struct {
	stream string
	row    []any
}

func ordersMessage(t *testing.T, gen *workload.OrdersGen) ([]any, []byte) {
	t.Helper()
	row, _, value, err := gen.Next()
	if err != nil {
		t.Fatal(err)
	}
	return row, value
}

func TestCompileFilterProgram(t *testing.T) {
	prog := compile(t, "SELECT STREAM rowtime, units FROM Orders WHERE units > 50")
	if !prog.Streaming {
		t.Fatal("streaming flag lost")
	}
	if len(prog.Inputs) != 1 || prog.Inputs[0].Topic != "orders" || prog.Inputs[0].Bootstrap {
		t.Fatalf("inputs %+v", prog.Inputs[0])
	}
	if prog.OutputTopic != "out" || prog.OutputRow.Arity() != 2 {
		t.Fatalf("output %s %v", prog.OutputTopic, prog.OutputRow)
	}
	if len(prog.Stores) != 0 {
		t.Fatalf("stateless query declared stores %v", prog.Stores)
	}

	out := openProgram(t, prog)
	gen := workload.NewOrdersGen(workload.DefaultOrdersConfig())
	sent := 0
	want := 0
	for i := 0; i < 100; i++ {
		row, value := ordersMessage(t, gen)
		if row[3].(int64) > 50 {
			want++
		}
		if err := prog.RouteMessage("orders", value, nil, row[0].(int64), 0, int64(i)); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	if len(*out) != want {
		t.Fatalf("%d outputs for %d sent, want %d", len(*out), sent, want)
	}
	for _, c := range *out {
		if len(c.row) != 2 {
			t.Fatalf("output row %v", c.row)
		}
	}
}

func TestCompileInsertTarget(t *testing.T) {
	prog := compile(t, "INSERT INTO Orders SELECT STREAM * FROM Orders WHERE units > 0")
	if prog.OutputTopic != "Orders" {
		t.Fatalf("insert target %q", prog.OutputTopic)
	}
}

func TestCompileJoinProgramMarksBootstrapAndStore(t *testing.T) {
	prog := compile(t, `
		SELECT STREAM Orders.rowtime, Products.supplierId
		FROM Orders JOIN Products ON Orders.productId = Products.productId`)
	var boot, stream *Input
	for _, in := range prog.Inputs {
		if in.Bootstrap {
			boot = in
		} else {
			stream = in
		}
	}
	if boot == nil || boot.Topic != "products" {
		t.Fatalf("bootstrap input %+v", boot)
	}
	if stream == nil || stream.Topic != "orders" {
		t.Fatalf("stream input %+v", stream)
	}
	if len(prog.Stores) != 1 || prog.Stores[0].Name != operators.JoinStoreName || !prog.Stores[0].Changelog {
		t.Fatalf("stores %v", prog.Stores)
	}
}

func TestCompiledJoinRoutesSides(t *testing.T) {
	prog := compile(t, `
		SELECT STREAM Orders.orderId, Products.supplierId
		FROM Orders JOIN Products ON Orders.productId = Products.productId`)
	out := openProgram(t, prog)

	// Relation row first (as bootstrap would deliver), then an order.
	pc := avro.MustCodec(workload.ProductsSchema())
	pv, err := pc.EncodeRow([]any{int64(7), "product-7", int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.RouteMessage("products", pv, []byte("7"), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	oc := avro.MustCodec(workload.OrdersSchema())
	ov, err := oc.EncodeRow([]any{int64(1000), int64(7), int64(1), int64(5), "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.RouteMessage("orders", ov, []byte("7"), 1000, 0, 0); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 1 {
		t.Fatalf("%d join outputs", len(*out))
	}
	row := (*out)[0].row
	if row[0].(int64) != 1 || row[1].(int64) != 3 {
		t.Fatalf("joined row %v", row)
	}
	// Order with no matching product: no output.
	ov2, _ := oc.EncodeRow([]any{int64(1001), int64(99), int64(2), int64(5), "x"})
	if err := prog.RouteMessage("orders", ov2, []byte("99"), 1001, 0, 1); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 1 {
		t.Fatalf("unmatched order emitted: %d outputs", len(*out))
	}
}

func TestCompileAggregateProgramFlush(t *testing.T) {
	prog := compile(t, `
		SELECT STREAM START(rowtime), COUNT(*) FROM Orders
		GROUP BY TUMBLE(rowtime, INTERVAL '1' SECOND)`)
	if prog.Aggregate() == nil {
		t.Fatal("aggregate operator not exposed")
	}
	out := openProgram(t, prog)
	oc := avro.MustCodec(workload.OrdersSchema())
	for i, ts := range []int64{100, 400, 900} {
		v, _ := oc.EncodeRow([]any{ts, int64(1), int64(i), int64(2), "x"})
		if err := prog.RouteMessage("orders", v, nil, ts, 0, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(*out) != 0 {
		t.Fatalf("window emitted early: %v", *out)
	}
	if err := prog.FlushAggregate(); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 1 || (*out)[0].row[1].(int64) != 3 {
		t.Fatalf("flushed windows %v", *out)
	}
}

func TestCompileRejectsDuplicateTopics(t *testing.T) {
	cat := catalog.New()
	if err := workload.DefineCatalog(cat); err != nil {
		t.Fatal(err)
	}
	stmt, err := parser.Parse(`
		SELECT STREAM a.rowtime FROM Orders a JOIN Orders b
		ON a.orderId = b.orderId
		AND a.rowtime BETWEEN b.rowtime - INTERVAL '1' SECOND AND b.rowtime + INTERVAL '1' SECOND`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := validate.New(cat).Validate(stmt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(p, "out"); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("self-join compile: %v", err)
	}
}

func TestOutputCodecNullable(t *testing.T) {
	prog := compile(t, "SELECT productId, SUM(units) FROM Orders GROUP BY productId")
	// Aggregate outputs must tolerate NULL (SUM of empty group).
	b, err := prog.OutputCodec.EncodeRow([]any{int64(1), nil})
	if err != nil {
		t.Fatalf("nullable output encode: %v", err)
	}
	row, err := prog.OutputCodec.DecodeRow(b, nil)
	if err != nil || row[1] != nil {
		t.Fatalf("decode %v %v", row, err)
	}
}

func TestCodecForUnmappableType(t *testing.T) {
	_, err := codecFor("X", types.NewRowType(types.Column{Name: "a", Type: types.Unknown}), true)
	if err == nil {
		t.Fatal("unknown type mapped")
	}
}

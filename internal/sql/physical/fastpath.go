package physical

import (
	"time"

	"samzasql/internal/avro"
	"samzasql/internal/metrics"
	"samzasql/internal/operators"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/plan"
	"samzasql/internal/trace"
)

// The fast path implements the paper's fifth future-work item (§7): "a
// SamzaSQL specific code generation framework which avoids AvroToArray and
// ArrayToAvro steps in message processing flow (Figure 4) by generating
// expressions that directly work on [a] SamzaSQL specific message
// abstraction ... and moving [the] stream insert operator to other
// operators". For filter/project-only plans over a single scan:
//
//   - filter predicates evaluate over a sparse row holding only the
//     referenced columns, decoded in one pass over the wire bytes;
//   - identity projections forward the original message bytes unchanged;
//   - column-subset projections copy the fields' raw encodings into the
//     output message without materializing values.
//
// The scan, filter, project and insert operators of Figure 4 fuse into one
// per-message function. Enable with Options.FastPath; the
// BenchmarkAblationFastPath benches measure the recovered throughput.

// fastProgram is the fused per-message handler.
type fastProgram struct {
	codec *avro.Codec
	// cond is nil for pure projections; wanted marks its column reads.
	cond   expr.Evaluator
	wanted []bool
	// identity forwards input bytes; otherwise projectNames re-encode.
	identity     bool
	projectNames []string
	outCodec     *avro.Codec

	send operators.Sender
	// scratch is the reusable sparse row.
	scratch []any
	topic   string
	target  string

	// Observability handles for the fused stage, bound by fastBinder at
	// Router.Open (nil without a metrics registry). The whole fused
	// scan/filter/project/insert chain reports as one "fastpath" operator.
	lat      *metrics.Histogram
	out      *metrics.Counter
	bytesIn  *metrics.Counter
	bytesOut *metrics.Counter
	// act is the task's tracing cursor (nil without one); sampled messages
	// record the fused chain as a single "operator.fastpath" span.
	act *trace.Active
}

// fastBinder registers the fused handler with the router purely for the
// Open lifecycle, so its metric handles bind from the task's registry like
// any other operator's.
type fastBinder struct {
	fp *fastProgram
}

// Open implements operators.Operator.
func (b *fastBinder) Open(ctx *operators.OpContext) error {
	if ctx.Metrics != nil {
		b.fp.lat = ctx.Metrics.Histogram("operator.fastpath.process-ns")
		b.fp.out = ctx.Metrics.Counter("operator.fastpath.out")
		b.fp.bytesIn = ctx.Metrics.Counter(operators.SerdeBytesInMetric)
		b.fp.bytesOut = ctx.Metrics.Counter(operators.SerdeBytesOutMetric)
	}
	b.fp.act = ctx.Trace
	return nil
}

// Process implements operators.Operator; the fused path never routes tuples
// through it.
func (b *fastBinder) Process(_ int, t *operators.Tuple, emit operators.Emit) error {
	return emit(t)
}

// tryFastPath recognizes Project(Filter?(Scan)) shapes whose projections
// are plain column references and compiles the fused handler. Returns false
// when the plan needs the general operator router.
func (p *Program) tryFastPath(body plan.Node, target string) (bool, error) {
	proj, ok := body.(*plan.Project)
	if !ok {
		return false, nil
	}
	inner := proj.Input
	var filt *plan.Filter
	if f, ok := inner.(*plan.Filter); ok {
		filt = f
		inner = f.Input
	}
	scan, ok := inner.(*plan.Scan)
	if !ok {
		return false, nil
	}
	// Projections must be direct column references.
	colIdx := make([]int, len(proj.Exprs))
	for i, e := range proj.Exprs {
		c, ok := e.(*expr.ColRef)
		if !ok {
			return false, nil
		}
		colIdx[i] = c.Idx
	}
	arity := scan.Object.Row.Arity()
	identity := len(colIdx) == arity
	for i, idx := range colIdx {
		if idx != i {
			identity = false
		}
	}

	schema, err := catalog.AvroSchemaFor(scan.Object)
	if err != nil {
		return false, err
	}
	codec, err := avro.NewCodec(schema)
	if err != nil {
		return false, err
	}
	fp := &fastProgram{
		codec:    codec,
		identity: identity,
		topic:    scan.Object.Topic,
		target:   target,
		scratch:  make([]any, arity),
	}
	if filt != nil {
		wanted := make([]bool, arity)
		ok := true
		walkCols(filt.Cond, func(c *expr.ColRef) {
			if c.Idx < 0 || c.Idx >= arity {
				ok = false
				return
			}
			wanted[c.Idx] = true
		})
		if !ok {
			return false, nil
		}
		ev, err := expr.Compile(filt.Cond)
		if err != nil {
			return false, err
		}
		fp.cond = ev
		fp.wanted = wanted
	}
	if identity {
		fp.outCodec = codec
	} else {
		names := make([]string, len(colIdx))
		fields := make([]avro.Field, len(colIdx))
		for i, idx := range colIdx {
			names[i] = schema.Fields[idx].Name
			fields[i] = avro.F(proj.Names[i], schema.Fields[idx].Schema)
		}
		out, err := avro.NewCodec(avro.Record("Output", fields...))
		if err != nil {
			return false, err
		}
		fp.projectNames = names
		fp.outCodec = out
	}

	p.fast = fp
	p.Stages = append(p.Stages, "fastpath")
	p.Router.Register(&fastBinder{fp: fp})
	p.Inputs = []*Input{{
		Topic: scan.Object.Topic,
		Scan:  &operators.ScanOp{Codec: codec, TsIdx: tsIdxOf(scan.Object), Stream: scan.Object.Topic},
	}}
	p.Streaming = scan.Streaming
	p.OutputTopic = target
	p.OutputRow = proj.Row()
	p.OutputCodec = fp.outCodec
	return true, nil
}

func tsIdxOf(o *catalog.Object) int {
	if o.TimestampCol == "" {
		return -1
	}
	return o.Row.Index(o.TimestampCol)
}

// handle processes one raw message through the fused path. Metric handles
// are pre-bound and the timing is two monotonic clock reads plus lock-free
// atomics, keeping the fused path at 0 allocs/op with instrumentation on.
func (f *fastProgram) handle(value, key []byte, ts int64, partition int32) error {
	start := time.Now()
	// Sampled messages bracket the fused chain in one span; the send runs
	// inside it, so an outgoing trace context parents here.
	if f.act.Sampled() {
		defer f.closeSpan(start)
		f.act.Begin("operator.fastpath", start.UnixNano())
	}
	if f.bytesIn != nil {
		f.bytesIn.Add(int64(len(value)))
	}
	if f.cond != nil {
		row, err := f.codec.ReadFields(value, f.wanted, f.scratch)
		if err != nil {
			return err
		}
		v, err := f.cond(row)
		if err != nil {
			return err
		}
		if b, ok := v.(bool); !ok || !b {
			if f.lat != nil {
				f.lat.Observe(time.Since(start).Nanoseconds())
			}
			return nil
		}
	}
	out := value
	if !f.identity {
		var err error
		out, err = f.codec.ProjectFields(value, f.projectNames, f.outCodec)
		if err != nil {
			return err
		}
	}
	err := f.send(f.target, partition, key, out, ts)
	if err == nil && f.out != nil {
		f.out.Inc()
		f.bytesOut.Add(int64(len(out)))
	}
	if f.lat != nil {
		f.lat.Observe(time.Since(start).Nanoseconds())
	}
	return err
}

// closeSpan ends the fused stage's trace span, anchored to the same
// monotonic start as the latency observation.
func (f *fastProgram) closeSpan(start time.Time) {
	f.act.End(start.UnixNano() + time.Since(start).Nanoseconds())
}

// walkCols visits the column references of a bound expression.
func walkCols(e expr.Expr, fn func(*expr.ColRef)) {
	switch n := e.(type) {
	case *expr.ColRef:
		fn(n)
	case *expr.Binary:
		walkCols(n.L, fn)
		walkCols(n.R, fn)
	case *expr.Not:
		walkCols(n.X, fn)
	case *expr.Neg:
		walkCols(n.X, fn)
	case *expr.IsNull:
		walkCols(n.X, fn)
	case *expr.Cast:
		walkCols(n.X, fn)
	case *expr.Call:
		for _, a := range n.Args {
			walkCols(a, fn)
		}
	case *expr.FloorTime:
		walkCols(n.X, fn)
	case *expr.Case:
		for _, w := range n.Whens {
			walkCols(w.When, fn)
			walkCols(w.Then, fn)
		}
		if n.Else != nil {
			walkCols(n.Else, fn)
		}
	case *expr.Like:
		walkCols(n.X, fn)
		walkCols(n.Pattern, fn)
	case *expr.InList:
		walkCols(n.X, fn)
		for _, i := range n.List {
			walkCols(i, fn)
		}
	}
}

package physical

import (
	"time"

	"samzasql/internal/avro"
	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/operators"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/plan"
	"samzasql/internal/trace"
)

// The fast path implements the paper's fifth future-work item (§7): "a
// SamzaSQL specific code generation framework which avoids AvroToArray and
// ArrayToAvro steps in message processing flow (Figure 4) by generating
// expressions that directly work on [a] SamzaSQL specific message
// abstraction ... and moving [the] stream insert operator to other
// operators". For filter/project-only plans over a single scan:
//
//   - filter predicates evaluate over a sparse row holding only the
//     referenced columns, decoded in one pass over the wire bytes;
//   - identity projections forward the original message bytes unchanged;
//   - column-subset projections copy the fields' raw encodings into the
//     output message without materializing values.
//
// The scan, filter, project and insert operators of Figure 4 fuse into one
// per-message function. Enable with Options.FastPath; the
// BenchmarkAblationFastPath benches measure the recovered throughput.

// fastProgram is the fused handler: per-message via handle, per-block via
// handleBlock. Three output modes, cheapest first: identity forwards input
// bytes unchanged; extent projection (projectNames/projIdx) byte-copies
// column encodings without materializing values; computed projection
// (projEvals) evaluates compiled expressions over the sparse row and
// re-encodes — the generalization that lets arbitrary filter/project/
// scalar pipelines compile to the kernel instead of falling back.
type fastProgram struct {
	codec *avro.Codec
	// cond is nil for pure projections; wanted marks the columns the
	// condition and any computed projections read.
	cond   expr.Evaluator
	wanted []bool
	// identity forwards input bytes; projectNames/projIdx select the extent
	// copy mode; projEvals selects the computed mode.
	identity     bool
	projectNames []string
	projIdx      []int
	projEvals    []expr.Evaluator
	outCodec     *avro.Codec

	send operators.Sender
	// sendBatch, when bound, lets handleBlock flush a whole block's output
	// in one producer call; without it batches fall back to handle.
	sendBatch operators.BatchSender
	// scratch is the reusable sparse row; outScratch the computed output row.
	scratch    []any
	outScratch []any
	topic      string
	target     string

	// Block-path arenas: outgoing message headers, (envIdx, start, end)
	// triplets locating each encoded row in the block slab, the field
	// extent scratch for extent projection, and the slab high-water mark
	// used to pre-size the next block's slab.
	msgScratch []kafka.Message
	offScratch []int
	extScratch []int
	slabHint   int

	// Observability handles for the fused stage, bound by fastBinder at
	// Router.Open (nil without a metrics registry). The whole fused
	// scan/filter/project/insert chain reports as one "fastpath" operator.
	lat      *metrics.Histogram
	out      *metrics.Counter
	bytesIn  *metrics.Counter
	bytesOut *metrics.Counter
	// act is the task's tracing cursor (nil without one); sampled messages
	// record the fused chain as a single "operator.fastpath" span.
	act *trace.Active
}

// fastBinder registers the fused handler with the router purely for the
// Open lifecycle, so its metric handles bind from the task's registry like
// any other operator's.
type fastBinder struct {
	fp *fastProgram
}

// Open implements operators.Operator.
func (b *fastBinder) Open(ctx *operators.OpContext) error {
	if ctx.Metrics != nil {
		b.fp.lat = ctx.Metrics.Histogram("operator.fastpath.process-ns")
		b.fp.out = ctx.Metrics.Counter("operator.fastpath.out")
		b.fp.bytesIn = ctx.Metrics.Counter(operators.SerdeBytesInMetric)
		b.fp.bytesOut = ctx.Metrics.Counter(operators.SerdeBytesOutMetric)
	}
	b.fp.act = ctx.Trace
	return nil
}

// Process implements operators.Operator; the fused path never routes tuples
// through it.
func (b *fastBinder) Process(_ int, t *operators.Tuple, emit operators.Emit) error {
	return emit(t)
}

// tryFastPath recognizes Project(Filter?(Scan)) shapes and compiles the
// fused handler. Column-reference projections compile to the byte-copy
// modes (identity / extent projection); any other scalar projection
// compiles to per-output expression evaluators over the sparse row —
// arbitrary filter/project/scalar pipelines take the kernel, and only
// aggregates, joins, sliding windows and repartitions fall back to the
// general operator router. Returns false for those.
func (p *Program) tryFastPath(body plan.Node, target string) (bool, error) {
	proj, ok := body.(*plan.Project)
	if !ok {
		return false, nil
	}
	inner := proj.Input
	var filt *plan.Filter
	if f, ok := inner.(*plan.Filter); ok {
		filt = f
		inner = f.Input
	}
	scan, ok := inner.(*plan.Scan)
	if !ok {
		return false, nil
	}
	// Classify the projections: all plain column references select the
	// byte-copy modes; anything else selects the computed mode.
	colIdx := make([]int, len(proj.Exprs))
	allCols := true
	for i, e := range proj.Exprs {
		if c, ok := e.(*expr.ColRef); ok {
			colIdx[i] = c.Idx
		} else {
			allCols = false
		}
	}
	arity := scan.Object.Row.Arity()
	identity := allCols && len(colIdx) == arity
	if identity {
		for i, idx := range colIdx {
			if idx != i {
				identity = false
			}
		}
	}

	schema, err := catalog.AvroSchemaFor(scan.Object)
	if err != nil {
		return false, err
	}
	codec, err := avro.NewCodec(schema)
	if err != nil {
		return false, err
	}
	fp := &fastProgram{
		codec:    codec,
		identity: identity,
		topic:    scan.Object.Topic,
		target:   target,
		scratch:  make([]any, arity),
	}
	wanted := make([]bool, arity)
	colsOK := true
	markCols := func(e expr.Expr) {
		walkCols(e, func(c *expr.ColRef) {
			if c.Idx < 0 || c.Idx >= arity {
				colsOK = false
				return
			}
			wanted[c.Idx] = true
		})
	}
	if filt != nil {
		markCols(filt.Cond)
		if !colsOK {
			return false, nil
		}
		ev, err := expr.Compile(filt.Cond)
		if err != nil {
			return false, err
		}
		fp.cond = ev
		fp.wanted = wanted
	}
	switch {
	case identity:
		fp.outCodec = codec
	case allCols:
		names := make([]string, len(colIdx))
		idxs := make([]int, len(colIdx))
		fields := make([]avro.Field, len(colIdx))
		for i, idx := range colIdx {
			if idx < 0 || idx >= arity {
				return false, nil
			}
			names[i] = schema.Fields[idx].Name
			idxs[i] = idx
			fields[i] = avro.F(proj.Names[i], schema.Fields[idx].Schema)
		}
		out, err := avro.NewCodec(avro.Record("Output", fields...))
		if err != nil {
			return false, err
		}
		fp.projectNames = names
		fp.projIdx = idxs
		fp.outCodec = out
	default:
		// Computed projection: compile each output expression over the
		// sparse row and re-encode with the same codec the general path
		// would use, so outputs stay byte-identical across paths.
		evals := make([]expr.Evaluator, len(proj.Exprs))
		for i, e := range proj.Exprs {
			markCols(e)
			ev, err := expr.Compile(e)
			if err != nil {
				// An expression the compiler cannot close over (a yet-
				// unsupported node) is not an error: the general router
				// handles it.
				return false, nil
			}
			evals[i] = ev
		}
		if !colsOK {
			return false, nil
		}
		out, err := codecFor("Output", proj.Row(), true)
		if err != nil {
			return false, err
		}
		fp.wanted = wanted
		fp.projEvals = evals
		fp.outScratch = make([]any, len(evals))
		fp.outCodec = out
	}

	p.fast = fp
	p.Stages = append(p.Stages, "fastpath")
	p.Router.Register(&fastBinder{fp: fp})
	p.Inputs = []*Input{{
		Topic: scan.Object.Topic,
		Scan:  &operators.ScanOp{Codec: codec, TsIdx: tsIdxOf(scan.Object), Stream: scan.Object.Topic},
	}}
	p.Streaming = scan.Streaming
	p.OutputTopic = target
	p.OutputRow = proj.Row()
	p.OutputCodec = fp.outCodec
	return true, nil
}

func tsIdxOf(o *catalog.Object) int {
	if o.TimestampCol == "" {
		return -1
	}
	return o.Row.Index(o.TimestampCol)
}

// handle processes one raw message through the fused path. Metric handles
// are pre-bound and the timing is two monotonic clock reads plus lock-free
// atomics, keeping the fused path at 0 allocs/op with instrumentation on.
func (f *fastProgram) handle(value, key []byte, ts int64, partition int32) error {
	start := time.Now()
	// Sampled messages bracket the fused chain in one span; the send runs
	// inside it, so an outgoing trace context parents here.
	if f.act.Sampled() {
		defer f.closeSpan(start)
		f.act.Begin("operator.fastpath", start.UnixNano())
	}
	if f.bytesIn != nil {
		f.bytesIn.Add(int64(len(value)))
	}
	var row []any
	if f.cond != nil || f.projEvals != nil {
		var err error
		row, err = f.codec.ReadFields(value, f.wanted, f.scratch)
		if err != nil {
			return err
		}
	}
	if f.cond != nil {
		v, err := f.cond(row)
		if err != nil {
			return err
		}
		if b, ok := v.(bool); !ok || !b {
			if f.lat != nil {
				f.lat.Observe(time.Since(start).Nanoseconds())
			}
			return nil
		}
	}
	out := value
	switch {
	case f.identity:
	case f.projEvals != nil:
		for i, ev := range f.projEvals {
			v, err := ev(row)
			if err != nil {
				return err
			}
			f.outScratch[i] = v
		}
		var err error
		out, err = f.outCodec.EncodeRow(f.outScratch)
		if err != nil {
			return err
		}
	default:
		var err error
		out, err = f.codec.ProjectFields(value, f.projectNames, f.outCodec)
		if err != nil {
			return err
		}
	}
	err := f.send(f.target, partition, key, out, ts)
	if err == nil && f.out != nil {
		f.out.Inc()
		f.bytesOut.Add(int64(len(out)))
	}
	if f.lat != nil {
		f.lat.Observe(time.Since(start).Nanoseconds())
	}
	return err
}

// closeSpan ends the fused stage's trace span, anchored to the same
// monotonic start as the latency observation.
func (f *fastProgram) closeSpan(start time.Time) {
	f.act.End(start.UnixNano() + time.Since(start).Nanoseconds())
}

// handleBlock runs the fused kernel over one polled batch: one sparse
// decode + condition evaluation per row, all surviving outputs encoded
// into a single per-block slab (freshly allocated, because the broker
// retains sent value slices; identity mode forwards the input bytes and
// allocates nothing), flushed through one batched send. Metrics observe
// once per block. Without a batch sender bound, the batch degrades to the
// per-message handler.
//
//samzasql:hotpath
func (f *fastProgram) handleBlock(envs []samza.IncomingMessageEnvelope, act *trace.Active, pollNs int64) error {
	if f.sendBatch == nil {
		for i := range envs {
			env := &envs[i]
			if env.Trace.Sampled {
				act.StartMessage(env.Trace, pollNs, time.Now().UnixNano())
			}
			if err := f.handle(env.Value, env.Key, env.Timestamp, env.Partition); err != nil {
				return err
			}
			if env.Trace.Sampled {
				act.FinishMessage(time.Now().UnixNano())
			}
		}
		return nil
	}
	start := time.Now()
	sampled := 0
	var bytesIn, bytesOut int64
	var slab []byte
	if !f.identity {
		slab = make([]byte, 0, f.slabHint)
	}
	msgs := f.msgScratch[:0]
	offs := f.offScratch[:0]
	ext := f.extScratch
	for i := range envs {
		env := &envs[i]
		if env.Trace.Sampled {
			sampled++
		}
		value := env.Value
		bytesIn += int64(len(value))
		var row []any
		if f.cond != nil || f.projEvals != nil {
			var err error
			row, err = f.codec.ReadFields(value, f.wanted, f.scratch)
			if err != nil {
				return err
			}
		}
		if f.cond != nil {
			v, err := f.cond(row)
			if err != nil {
				return err
			}
			if b, ok := v.(bool); !ok || !b {
				continue
			}
		}
		switch {
		case f.identity:
			// Forwarded bytes are broker-owned already; no slab needed.
			msgs = append(msgs, kafka.Message{
				Partition: env.Partition, Key: env.Key, Value: value, Timestamp: env.Timestamp,
			})
			bytesOut += int64(len(value))
		case f.projEvals != nil:
			for j, ev := range f.projEvals {
				v, err := ev(row)
				if err != nil {
					return err
				}
				f.outScratch[j] = v
			}
			pos := len(slab)
			var err error
			slab, err = f.outCodec.AppendEncodeRow(slab, f.outScratch)
			if err != nil {
				return err
			}
			offs = append(offs, i, pos, len(slab))
		default:
			var err error
			ext, err = f.codec.FieldExtents(value, ext)
			if err != nil {
				return err
			}
			pos := len(slab)
			for _, idx := range f.projIdx {
				slab = append(slab, value[ext[2*idx]:ext[2*idx+1]]...)
			}
			offs = append(offs, i, pos, len(slab))
		}
	}
	// Slab modes build their messages only after the slab stops growing:
	// append may have reallocated it mid-block.
	for k := 0; k+2 < len(offs); k += 3 {
		env := &envs[offs[k]]
		s, e := offs[k+1], offs[k+2]
		msgs = append(msgs, kafka.Message{
			Partition: env.Partition, Key: env.Key, Value: slab[s:e:e], Timestamp: env.Timestamp,
		})
	}
	f.msgScratch = msgs
	f.offScratch = offs
	f.extScratch = ext
	if len(slab) > f.slabHint {
		f.slabHint = len(slab)
	}
	if !f.identity {
		bytesOut = int64(len(slab))
	}
	if len(msgs) > 0 {
		if err := f.sendBatch(f.target, msgs); err != nil {
			return err
		}
	}
	if f.out != nil {
		f.out.Add(int64(len(msgs)))
		f.bytesIn.Add(bytesIn)
		f.bytesOut.Add(bytesOut)
	}
	d := time.Since(start).Nanoseconds()
	if f.lat != nil {
		f.lat.Observe(d)
	}
	if sampled > 0 {
		f.replayBlockTrace(envs, act, pollNs, start.UnixNano(), start.UnixNano()+d, int64(len(envs)))
	}
	return nil
}

// replayBlockTrace gives each sampled message of a completed kernel block
// its trace tree: produce/poll/process plus one batch-level
// "operator.fastpath" span carrying the block's row count.
func (f *fastProgram) replayBlockTrace(envs []samza.IncomingMessageEnvelope, act *trace.Active, pollNs, startNs, endNs, rows int64) {
	for i := range envs {
		if !envs[i].Trace.Sampled {
			continue
		}
		act.StartMessage(envs[i].Trace, pollNs, startNs)
		act.StageRows("operator.fastpath", startNs, endNs, rows)
		act.FinishMessage(endNs)
	}
}

// walkCols visits the column references of a bound expression.
func walkCols(e expr.Expr, fn func(*expr.ColRef)) {
	switch n := e.(type) {
	case *expr.ColRef:
		fn(n)
	case *expr.Binary:
		walkCols(n.L, fn)
		walkCols(n.R, fn)
	case *expr.Not:
		walkCols(n.X, fn)
	case *expr.Neg:
		walkCols(n.X, fn)
	case *expr.IsNull:
		walkCols(n.X, fn)
	case *expr.Cast:
		walkCols(n.X, fn)
	case *expr.Call:
		for _, a := range n.Args {
			walkCols(a, fn)
		}
	case *expr.FloorTime:
		walkCols(n.X, fn)
	case *expr.Case:
		for _, w := range n.Whens {
			walkCols(w.When, fn)
			walkCols(w.Then, fn)
		}
		if n.Else != nil {
			walkCols(n.Else, fn)
		}
	case *expr.Like:
		walkCols(n.X, fn)
		walkCols(n.Pattern, fn)
	case *expr.InList:
		walkCols(n.X, fn)
		for _, i := range n.List {
			walkCols(i, fn)
		}
	}
}

// Package opt implements SamzaSQL's rule-based logical optimizer (§4.2):
// constant folding, filter merging, predicate pushdown through projections
// and into join sides, and projection fusion. Rules fire to fixpoint; every
// rule preserves query semantics, a property the test suite checks by
// executing plans before and after optimization.
package opt

import (
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/plan"
	"samzasql/internal/sql/types"
)

// Optimize rewrites the plan to fixpoint with all rules.
func Optimize(root plan.Node) plan.Node {
	for i := 0; i < maxPasses; i++ {
		next, changed := rewrite(root)
		root = next
		if !changed {
			break
		}
	}
	return root
}

const maxPasses = 10

// rewrite applies one bottom-up pass of all rules.
func rewrite(n plan.Node) (plan.Node, bool) {
	changed := false
	switch t := n.(type) {
	case *plan.Filter:
		in, c := rewrite(t.Input)
		t = &plan.Filter{Input: in, Cond: foldExpr(t.Cond, &changed)}
		changed = changed || c
		if out, ok := dropTrueFilter(t); ok {
			return out, true
		}
		if out, ok := mergeFilters(t); ok {
			out2, _ := rewrite(out)
			return out2, true
		}
		if out, ok := pushFilterThroughProject(t); ok {
			out2, _ := rewrite(out)
			return out2, true
		}
		if out, ok := pushFilterIntoJoin(t); ok {
			out2, _ := rewrite(out)
			return out2, true
		}
		return t, changed
	case *plan.Project:
		in, c := rewrite(t.Input)
		changed = changed || c
		exprs := make([]expr.Expr, len(t.Exprs))
		for i, e := range t.Exprs {
			exprs[i] = foldExpr(e, &changed)
		}
		p := plan.NewProject(in, exprs, t.Names)
		if out, ok := mergeProjects(p); ok {
			return out, true
		}
		return p, changed
	case *plan.Aggregate:
		in, c := rewrite(t.Input)
		return plan.NewAggregate(in, t.Keys, t.Window, t.Aggs), changed || c
	case *plan.Analytic:
		in, c := rewrite(t.Input)
		return plan.NewAnalytic(in, t.Calls), changed || c
	case *plan.Join:
		l, c1 := rewrite(t.Left)
		r, c2 := rewrite(t.Right)
		return plan.NewJoin(l, r, t.Info), changed || c1 || c2
	case *plan.Insert:
		in, c := rewrite(t.Input)
		return &plan.Insert{Input: in, Target: t.Target}, changed || c
	default:
		return n, false
	}
}

// --- rule: constant folding ---

// foldExpr evaluates constant sub-expressions at plan time.
func foldExpr(e expr.Expr, changed *bool) expr.Expr {
	folded := fold(e, changed)
	return folded
}

func fold(e expr.Expr, changed *bool) expr.Expr {
	switch n := e.(type) {
	case *expr.ColRef, *expr.Const:
		return e
	case *expr.Binary:
		l := fold(n.L, changed)
		r := fold(n.R, changed)
		out := &expr.Binary{Op: n.Op, L: l, R: r, T: n.T}
		return tryEvalConst(out, changed)
	case *expr.Not:
		x := fold(n.X, changed)
		return tryEvalConst(&expr.Not{X: x}, changed)
	case *expr.Neg:
		x := fold(n.X, changed)
		return tryEvalConst(&expr.Neg{X: x}, changed)
	case *expr.IsNull:
		x := fold(n.X, changed)
		return tryEvalConst(&expr.IsNull{Not: n.Not, X: x}, changed)
	case *expr.Cast:
		x := fold(n.X, changed)
		return tryEvalConst(&expr.Cast{X: x, T: n.T}, changed)
	case *expr.Call:
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = fold(a, changed)
		}
		return tryEvalConst(&expr.Call{Fn: n.Fn, Args: args, T: n.T}, changed)
	case *expr.FloorTime:
		x := fold(n.X, changed)
		return tryEvalConst(&expr.FloorTime{X: x, UnitMillis: n.UnitMillis, UnitName: n.UnitName}, changed)
	case *expr.Case:
		whens := make([]expr.CaseWhen, len(n.Whens))
		for i, w := range n.Whens {
			whens[i] = expr.CaseWhen{When: fold(w.When, changed), Then: fold(w.Then, changed)}
		}
		var els expr.Expr
		if n.Else != nil {
			els = fold(n.Else, changed)
		}
		return &expr.Case{Whens: whens, Else: els, T: n.T}
	case *expr.Like:
		return &expr.Like{Not: n.Not, X: fold(n.X, changed), Pattern: fold(n.Pattern, changed)}
	case *expr.InList:
		list := make([]expr.Expr, len(n.List))
		for i, it := range n.List {
			list[i] = fold(it, changed)
		}
		return &expr.InList{Not: n.Not, X: fold(n.X, changed), List: list}
	default:
		return e
	}
}

// tryEvalConst evaluates e when all leaves are constants.
func tryEvalConst(e expr.Expr, changed *bool) expr.Expr {
	if _, already := e.(*expr.Const); already {
		return e
	}
	if hasColRef(e) {
		return e
	}
	ev, err := expr.Compile(e)
	if err != nil {
		return e
	}
	v, err := ev(nil)
	if err != nil {
		// Errors (e.g. division by zero) must surface at runtime, not
		// vanish at plan time.
		return e
	}
	*changed = true
	return &expr.Const{V: v, T: e.Type()}
}

func hasColRef(e expr.Expr) bool {
	found := false
	walk(e, func(x expr.Expr) {
		if _, ok := x.(*expr.ColRef); ok {
			found = true
		}
	})
	return found
}

func walk(e expr.Expr, fn func(expr.Expr)) {
	fn(e)
	switch n := e.(type) {
	case *expr.Binary:
		walk(n.L, fn)
		walk(n.R, fn)
	case *expr.Not:
		walk(n.X, fn)
	case *expr.Neg:
		walk(n.X, fn)
	case *expr.IsNull:
		walk(n.X, fn)
	case *expr.Cast:
		walk(n.X, fn)
	case *expr.Call:
		for _, a := range n.Args {
			walk(a, fn)
		}
	case *expr.FloorTime:
		walk(n.X, fn)
	case *expr.Case:
		for _, w := range n.Whens {
			walk(w.When, fn)
			walk(w.Then, fn)
		}
		if n.Else != nil {
			walk(n.Else, fn)
		}
	case *expr.Like:
		walk(n.X, fn)
		walk(n.Pattern, fn)
	case *expr.InList:
		walk(n.X, fn)
		for _, i := range n.List {
			walk(i, fn)
		}
	}
}

// --- rule: drop trivial filters ---

func dropTrueFilter(f *plan.Filter) (plan.Node, bool) {
	if c, ok := f.Cond.(*expr.Const); ok {
		if b, ok := c.V.(bool); ok && b {
			return f.Input, true
		}
	}
	return nil, false
}

// --- rule: merge stacked filters ---

func mergeFilters(f *plan.Filter) (plan.Node, bool) {
	inner, ok := f.Input.(*plan.Filter)
	if !ok {
		return nil, false
	}
	cond := &expr.Binary{Op: expr.And, L: inner.Cond, R: f.Cond, T: types.Boolean}
	return &plan.Filter{Input: inner.Input, Cond: cond}, true
}

// --- rule: push filter through project ---

// pushFilterThroughProject rewrites Filter(Project(in)) to
// Project(Filter(in)) by substituting projection expressions for column
// references. Only fires when every referenced projection is deterministic
// (all our expressions are) — the classic predicate-pushdown rule.
func pushFilterThroughProject(f *plan.Filter) (plan.Node, bool) {
	p, ok := f.Input.(*plan.Project)
	if !ok {
		return nil, false
	}
	cond, ok := substitute(f.Cond, p.Exprs)
	if !ok {
		return nil, false
	}
	return plan.NewProject(&plan.Filter{Input: p.Input, Cond: cond}, p.Exprs, p.Names), true
}

// substitute replaces ColRef(i) with subs[i]. Reports false when an index is
// out of range.
func substitute(e expr.Expr, subs []expr.Expr) (expr.Expr, bool) {
	switch n := e.(type) {
	case *expr.ColRef:
		if n.Idx < 0 || n.Idx >= len(subs) {
			return nil, false
		}
		return subs[n.Idx], true
	case *expr.Const:
		return n, true
	case *expr.Binary:
		l, ok1 := substitute(n.L, subs)
		r, ok2 := substitute(n.R, subs)
		if !ok1 || !ok2 {
			return nil, false
		}
		return &expr.Binary{Op: n.Op, L: l, R: r, T: n.T}, true
	case *expr.Not:
		x, ok := substitute(n.X, subs)
		if !ok {
			return nil, false
		}
		return &expr.Not{X: x}, true
	case *expr.Neg:
		x, ok := substitute(n.X, subs)
		if !ok {
			return nil, false
		}
		return &expr.Neg{X: x}, true
	case *expr.IsNull:
		x, ok := substitute(n.X, subs)
		if !ok {
			return nil, false
		}
		return &expr.IsNull{Not: n.Not, X: x}, true
	case *expr.Cast:
		x, ok := substitute(n.X, subs)
		if !ok {
			return nil, false
		}
		return &expr.Cast{X: x, T: n.T}, true
	case *expr.Call:
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			s, ok := substitute(a, subs)
			if !ok {
				return nil, false
			}
			args[i] = s
		}
		return &expr.Call{Fn: n.Fn, Args: args, T: n.T}, true
	case *expr.FloorTime:
		x, ok := substitute(n.X, subs)
		if !ok {
			return nil, false
		}
		return &expr.FloorTime{X: x, UnitMillis: n.UnitMillis, UnitName: n.UnitName}, true
	case *expr.Case:
		whens := make([]expr.CaseWhen, len(n.Whens))
		for i, w := range n.Whens {
			we, ok1 := substitute(w.When, subs)
			te, ok2 := substitute(w.Then, subs)
			if !ok1 || !ok2 {
				return nil, false
			}
			whens[i] = expr.CaseWhen{When: we, Then: te}
		}
		var els expr.Expr
		if n.Else != nil {
			var ok bool
			els, ok = substitute(n.Else, subs)
			if !ok {
				return nil, false
			}
		}
		return &expr.Case{Whens: whens, Else: els, T: n.T}, true
	case *expr.Like:
		x, ok1 := substitute(n.X, subs)
		pt, ok2 := substitute(n.Pattern, subs)
		if !ok1 || !ok2 {
			return nil, false
		}
		return &expr.Like{Not: n.Not, X: x, Pattern: pt}, true
	case *expr.InList:
		x, ok := substitute(n.X, subs)
		if !ok {
			return nil, false
		}
		list := make([]expr.Expr, len(n.List))
		for i, it := range n.List {
			s, ok := substitute(it, subs)
			if !ok {
				return nil, false
			}
			list[i] = s
		}
		return &expr.InList{Not: n.Not, X: x, List: list}, true
	default:
		return nil, false
	}
}

// --- rule: push filter conjuncts into join sides ---

// pushFilterIntoJoin moves conjuncts that reference only one side of a join
// below the join, shrinking join state.
func pushFilterIntoJoin(f *plan.Filter) (plan.Node, bool) {
	j, ok := f.Input.(*plan.Join)
	if !ok {
		return nil, false
	}
	split := j.Left.Row().Arity()
	var leftConj, rightConj, rest []expr.Expr
	for _, c := range conjuncts(f.Cond) {
		lo, hi, any := colRange(c)
		switch {
		case any && hi < split:
			leftConj = append(leftConj, c)
		case any && lo >= split:
			rightConj = append(rightConj, shiftCols(c, -split))
		default:
			rest = append(rest, c)
		}
	}
	if len(leftConj) == 0 && len(rightConj) == 0 {
		return nil, false
	}
	left := j.Left
	if len(leftConj) > 0 {
		left = &plan.Filter{Input: left, Cond: andAll(leftConj)}
	}
	right := j.Right
	if len(rightConj) > 0 {
		right = &plan.Filter{Input: right, Cond: andAll(rightConj)}
	}
	var out plan.Node = plan.NewJoin(left, right, j.Info)
	if len(rest) > 0 {
		out = &plan.Filter{Input: out, Cond: andAll(rest)}
	}
	return out, true
}

func conjuncts(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Binary); ok && b.Op == expr.And {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []expr.Expr{e}
}

func andAll(es []expr.Expr) expr.Expr {
	out := es[0]
	for _, e := range es[1:] {
		out = &expr.Binary{Op: expr.And, L: out, R: e, T: types.Boolean}
	}
	return out
}

func colRange(e expr.Expr) (lo, hi int, any bool) {
	lo, hi = 1<<30, -1
	walk(e, func(x expr.Expr) {
		if c, ok := x.(*expr.ColRef); ok {
			any = true
			if c.Idx < lo {
				lo = c.Idx
			}
			if c.Idx > hi {
				hi = c.Idx
			}
		}
	})
	return lo, hi, any
}

// shiftCols rebases column references by delta (for pushing below the right
// join input). The expression must only reference shiftable columns.
func shiftCols(e expr.Expr, delta int) expr.Expr {
	subs := func(c *expr.ColRef) expr.Expr {
		return &expr.ColRef{Idx: c.Idx + delta, Name: c.Name, T: c.T}
	}
	out, _ := mapCols(e, subs)
	return out
}

func mapCols(e expr.Expr, fn func(*expr.ColRef) expr.Expr) (expr.Expr, bool) {
	// Build a substitution list lazily via substitute: simpler to reuse the
	// recursion by creating a wrapper around each node type.
	switch n := e.(type) {
	case *expr.ColRef:
		return fn(n), true
	case *expr.Const:
		return n, true
	case *expr.Binary:
		l, _ := mapCols(n.L, fn)
		r, _ := mapCols(n.R, fn)
		return &expr.Binary{Op: n.Op, L: l, R: r, T: n.T}, true
	case *expr.Not:
		x, _ := mapCols(n.X, fn)
		return &expr.Not{X: x}, true
	case *expr.Neg:
		x, _ := mapCols(n.X, fn)
		return &expr.Neg{X: x}, true
	case *expr.IsNull:
		x, _ := mapCols(n.X, fn)
		return &expr.IsNull{Not: n.Not, X: x}, true
	case *expr.Cast:
		x, _ := mapCols(n.X, fn)
		return &expr.Cast{X: x, T: n.T}, true
	case *expr.Call:
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i], _ = mapCols(a, fn)
		}
		return &expr.Call{Fn: n.Fn, Args: args, T: n.T}, true
	case *expr.FloorTime:
		x, _ := mapCols(n.X, fn)
		return &expr.FloorTime{X: x, UnitMillis: n.UnitMillis, UnitName: n.UnitName}, true
	case *expr.Case:
		whens := make([]expr.CaseWhen, len(n.Whens))
		for i, w := range n.Whens {
			we, _ := mapCols(w.When, fn)
			te, _ := mapCols(w.Then, fn)
			whens[i] = expr.CaseWhen{When: we, Then: te}
		}
		var els expr.Expr
		if n.Else != nil {
			els, _ = mapCols(n.Else, fn)
		}
		return &expr.Case{Whens: whens, Else: els, T: n.T}, true
	case *expr.Like:
		x, _ := mapCols(n.X, fn)
		p, _ := mapCols(n.Pattern, fn)
		return &expr.Like{Not: n.Not, X: x, Pattern: p}, true
	case *expr.InList:
		x, _ := mapCols(n.X, fn)
		list := make([]expr.Expr, len(n.List))
		for i, it := range n.List {
			list[i], _ = mapCols(it, fn)
		}
		return &expr.InList{Not: n.Not, X: x, List: list}, true
	default:
		return e, false
	}
}

// --- rule: merge stacked projects ---

func mergeProjects(p *plan.Project) (plan.Node, bool) {
	inner, ok := p.Input.(*plan.Project)
	if !ok {
		return nil, false
	}
	exprs := make([]expr.Expr, len(p.Exprs))
	for i, e := range p.Exprs {
		s, ok := substitute(e, inner.Exprs)
		if !ok {
			return nil, false
		}
		exprs[i] = s
	}
	return plan.NewProject(inner.Input, exprs, p.Names), true
}

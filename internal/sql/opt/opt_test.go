package opt

import (
	"strings"
	"testing"

	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/parser"
	"samzasql/internal/sql/plan"
	"samzasql/internal/sql/types"
	"samzasql/internal/sql/validate"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	err := cat.Define(&catalog.Object{
		Kind: catalog.Stream, Name: "Orders", Topic: "orders", TimestampCol: "rowtime",
		Row: types.NewRowType(
			types.Column{Name: "rowtime", Type: types.Timestamp},
			types.Column{Name: "productId", Type: types.Bigint},
			types.Column{Name: "units", Type: types.Bigint},
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cat.Define(&catalog.Object{
		Kind: catalog.Table, Name: "Products", Topic: "products",
		Row: types.NewRowType(
			types.Column{Name: "productId", Type: types.Bigint},
			types.Column{Name: "supplierId", Type: types.Bigint},
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func planFor(t *testing.T, query string) plan.Node {
	t.Helper()
	stmt, err := parser.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := validate.New(testCatalog(t)).Validate(stmt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConstantFolding(t *testing.T) {
	p := planFor(t, "SELECT STREAM units + (1 + 2) * 3 FROM Orders")
	o := Optimize(p)
	s := plan.Format(o)
	if !strings.Contains(s, "+ 9") {
		t.Fatalf("constant not folded:\n%s", s)
	}
}

func TestDivisionByZeroNotFolded(t *testing.T) {
	p := planFor(t, "SELECT STREAM units + 1 / 0 FROM Orders")
	o := Optimize(p)
	s := plan.Format(o)
	if !strings.Contains(s, "/") {
		t.Fatalf("division by zero folded away:\n%s", s)
	}
}

func TestTrueFilterDropped(t *testing.T) {
	p := planFor(t, "SELECT STREAM * FROM Orders WHERE 1 < 2")
	o := Optimize(p)
	if strings.Contains(plan.Format(o), "Filter") {
		t.Fatalf("tautological filter survived:\n%s", plan.Format(o))
	}
}

func TestFilterPushedIntoJoinSides(t *testing.T) {
	p := planFor(t, `
		SELECT STREAM Orders.rowtime
		FROM Orders JOIN Products ON Orders.productId = Products.productId
		WHERE Orders.units > 10 AND Products.supplierId = 3`)
	o := Optimize(p)
	s := plan.Format(o)
	// Both conjuncts must sit below the join.
	joinLine := -1
	var filterLines []int
	for i, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "Join") {
			joinLine = i
		}
		if strings.Contains(line, "Filter") {
			filterLines = append(filterLines, i)
		}
	}
	if joinLine < 0 || len(filterLines) != 2 {
		t.Fatalf("expected 2 filters and a join:\n%s", s)
	}
	for _, f := range filterLines {
		if f < joinLine {
			t.Fatalf("filter above join:\n%s", s)
		}
	}
}

func TestProjectsMerged(t *testing.T) {
	p := planFor(t, `
		SELECT STREAM x + 1 FROM (SELECT units AS x FROM Orders)`)
	o := Optimize(p)
	s := plan.Format(o)
	if strings.Count(s, "Project") != 1 {
		t.Fatalf("stacked projects not merged:\n%s", s)
	}
}

func TestFilterPushedThroughProject(t *testing.T) {
	p := planFor(t, `
		SELECT STREAM x FROM (SELECT units AS x, rowtime FROM Orders) WHERE x > 5`)
	o := Optimize(p)
	s := plan.Format(o)
	lines := strings.Split(s, "\n")
	filterIdx, projectIdx := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "Filter") && filterIdx < 0 {
			filterIdx = i
		}
		if strings.Contains(l, "Project") && projectIdx < 0 {
			projectIdx = i
		}
	}
	if filterIdx < projectIdx {
		t.Fatalf("filter not pushed below project:\n%s", s)
	}
	// The pushed condition must reference the base column.
	if !strings.Contains(s, "$2:units") {
		t.Fatalf("pushed filter lost column rebinding:\n%s", s)
	}
}

func TestStackedFiltersMerged(t *testing.T) {
	// Build Filter(Filter(Scan)) directly.
	base := planFor(t, "SELECT STREAM * FROM Orders WHERE units > 1")
	proj, ok := base.(*plan.Project)
	if !ok {
		t.Fatalf("root %T", base)
	}
	inner := proj.Input
	outer := &plan.Filter{Input: inner, Cond: &expr.Binary{
		Op: expr.Lt,
		L:  &expr.ColRef{Idx: 2, Name: "units", T: types.Bigint},
		R:  &expr.Const{V: int64(50), T: types.Bigint},
		T:  types.Boolean,
	}}
	o := Optimize(outer)
	if strings.Count(plan.Format(o), "Filter") != 1 {
		t.Fatalf("filters not merged:\n%s", plan.Format(o))
	}
}

func TestOptimizePreservesShapeOfAggregates(t *testing.T) {
	p := planFor(t, `
		SELECT STREAM productId, COUNT(*) FROM Orders
		GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR), productId
		HAVING COUNT(*) > 2`)
	o := Optimize(p)
	s := plan.Format(o)
	for _, want := range []string{"Aggregate", "Filter", "Project", "Scan"} {
		if !strings.Contains(s, want) {
			t.Fatalf("optimized aggregate plan missing %s:\n%s", want, s)
		}
	}
	// HAVING must stay above the aggregate.
	lines := strings.Split(s, "\n")
	aggIdx, filterIdx := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "Aggregate") {
			aggIdx = i
		}
		if strings.Contains(l, "Filter") {
			filterIdx = i
		}
	}
	if filterIdx > aggIdx {
		t.Fatalf("HAVING pushed below aggregate:\n%s", s)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	p := planFor(t, `
		SELECT STREAM Orders.rowtime FROM Orders
		JOIN Products ON Orders.productId = Products.productId
		WHERE Orders.units > 10 AND 1 = 1`)
	o1 := Optimize(p)
	o2 := Optimize(o1)
	if plan.Format(o1) != plan.Format(o2) {
		t.Fatalf("optimizer not idempotent:\n%s\nvs\n%s", plan.Format(o1), plan.Format(o2))
	}
}

package lexer

import (
	"strings"
	"testing"

	"samzasql/internal/sql/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := New(src).Tokens()
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestScanStreamingSelect(t *testing.T) {
	src := "SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 25;"
	want := []token.Kind{
		token.SELECT, token.STREAM, token.IDENT, token.COMMA, token.IDENT,
		token.COMMA, token.IDENT, token.FROM, token.IDENT, token.WHERE,
		token.IDENT, token.GT, token.NUMBER, token.SEMICOLON, token.EOF,
	}
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks, err := New("select Stream fRoM").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.SELECT || toks[1].Kind != token.STREAM || toks[2].Kind != token.FROM {
		t.Fatalf("tokens %v", toks)
	}
	// Keyword text is normalized upper.
	if toks[1].Text != "STREAM" {
		t.Fatalf("keyword text %q", toks[1].Text)
	}
}

func TestIdentifiersPreserveCase(t *testing.T) {
	toks, err := New("productId").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.IDENT || toks[0].Text != "productId" {
		t.Fatalf("token %v", toks[0])
	}
}

func TestOperators(t *testing.T) {
	src := "+ - * / % = <> != < <= > >= || ( ) , . ;"
	want := []token.Kind{
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.EQ, token.NEQ, token.NEQ, token.LT, token.LTE, token.GT,
		token.GTE, token.CONCAT, token.LPAREN, token.RPAREN, token.COMMA,
		token.DOT, token.SEMICOLON, token.EOF,
	}
	got := kinds(t, src)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, err := New("1 42 3.14 .5 2e10 1.5E-3").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	wantTexts := []string{"1", "42", "3.14", ".5", "2e10", "1.5E-3"}
	for i, want := range wantTexts {
		if toks[i].Kind != token.NUMBER || toks[i].Text != want {
			t.Fatalf("token %d = %v, want NUMBER(%q)", i, toks[i], want)
		}
	}
}

func TestStringLiterals(t *testing.T) {
	toks, err := New("'hello' '1:30' 'it''s'").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	wantTexts := []string{"hello", "1:30", "it's"}
	for i, want := range wantTexts {
		if toks[i].Kind != token.STRING || toks[i].Text != want {
			t.Fatalf("token %d = %v, want STRING(%q)", i, toks[i], want)
		}
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	toks, err := New(`"Order Totals" "a""b"`).Tokens()
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.QIDENT || toks[0].Text != "Order Totals" {
		t.Fatalf("token %v", toks[0])
	}
	if toks[1].Kind != token.QIDENT || toks[1].Text != `a"b` {
		t.Fatalf("token %v", toks[1])
	}
}

func TestIntervalLiteralTokens(t *testing.T) {
	src := "INTERVAL '1:30' HOUR TO MINUTE"
	want := []token.Kind{token.INTERVAL, token.STRING, token.HOUR, token.TO, token.MINUTE, token.EOF}
	got := kinds(t, src)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestComments(t *testing.T) {
	src := `SELECT -- line comment
	/* block
	   comment */ STREAM`
	got := kinds(t, src)
	if got[0] != token.SELECT || got[1] != token.STREAM || got[2] != token.EOF {
		t.Fatalf("tokens %v", got)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"'unterminated",
		`"unterminated`,
		`""`,
		"/* never closed",
		"@",
		"12abc",
	}
	for _, src := range cases {
		if _, err := New(src).Tokens(); err == nil {
			t.Errorf("lex %q succeeded", src)
		} else if !strings.Contains(err.Error(), "lex error") {
			t.Errorf("lex %q: unexpected error text %v", src, err)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := New("SELECT\n  x").Tokens()
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("SELECT at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("x at %v", toks[1].Pos)
	}
}

func TestWindowFunctionTokens(t *testing.T) {
	src := "SUM(units) OVER (PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '5' MINUTE PRECEDING)"
	got := kinds(t, src)
	want := []token.Kind{
		token.IDENT, token.LPAREN, token.IDENT, token.RPAREN, token.OVER,
		token.LPAREN, token.PARTITION, token.BY, token.IDENT, token.ORDER,
		token.BY, token.IDENT, token.RANGE, token.INTERVAL, token.STRING,
		token.MINUTE, token.PRECEDING, token.RPAREN, token.EOF,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

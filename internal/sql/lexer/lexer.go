// Package lexer scans SamzaSQL query text into tokens.
package lexer

import (
	"fmt"
	"strings"

	"samzasql/internal/sql/token"
)

// Lexer scans one query string.
type Lexer struct {
	src  string
	pos  int // byte offset of next rune
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Error is a scan error with position.
type Error struct {
	Pos token.Position
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("lex error at %s: %s", e.Pos, e.Msg) }

// Tokens scans the whole input, returning tokens ending with EOF.
func (l *Lexer) Tokens() ([]token.Token, error) {
	var out []token.Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == token.EOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) position() token.Position {
	return token.Position{Line: l.line, Col: l.col}
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peek2() == '-':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.position()
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next scans one token.
func (l *Lexer) Next() (token.Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token.Token{}, err
	}
	pos := l.position()
	if l.pos >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isDigit(c), c == '.' && isDigit(l.peek2()):
		return l.scanNumber(pos)
	case isIdentStart(c):
		return l.scanIdent(pos)
	case c == '\'':
		return l.scanString(pos)
	case c == '"':
		return l.scanQuotedIdent(pos)
	}
	l.advance()
	simple := func(k token.Kind) (token.Token, error) {
		return token.Token{Kind: k, Text: k.String(), Pos: pos}, nil
	}
	switch c {
	case '+':
		return simple(token.PLUS)
	case '-':
		return simple(token.MINUS)
	case '*':
		return simple(token.STAR)
	case '/':
		return simple(token.SLASH)
	case '%':
		return simple(token.PERCENT)
	case '(':
		return simple(token.LPAREN)
	case ')':
		return simple(token.RPAREN)
	case ',':
		return simple(token.COMMA)
	case '.':
		return simple(token.DOT)
	case ';':
		return simple(token.SEMICOLON)
	case '=':
		return simple(token.EQ)
	case '<':
		if l.peek() == '=' {
			l.advance()
			return simple(token.LTE)
		}
		if l.peek() == '>' {
			l.advance()
			return simple(token.NEQ)
		}
		return simple(token.LT)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return simple(token.GTE)
		}
		return simple(token.GT)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return simple(token.NEQ)
		}
		return token.Token{}, &Error{Pos: pos, Msg: "unexpected '!'"}
	case '|':
		if l.peek() == '|' {
			l.advance()
			return simple(token.CONCAT)
		}
		return token.Token{}, &Error{Pos: pos, Msg: "unexpected '|'"}
	}
	return token.Token{}, &Error{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", c)}
}

func (l *Lexer) scanNumber(pos token.Position) (token.Token, error) {
	start := l.pos
	sawDot := false
	for l.pos < len(l.src) {
		c := l.peek()
		if isDigit(c) {
			l.advance()
			continue
		}
		if c == '.' && !sawDot && isDigit(l.peek2()) {
			sawDot = true
			l.advance()
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if isIdentStart(l.peek()) && l.peek() != 'e' && l.peek() != 'E' {
		return token.Token{}, &Error{Pos: pos, Msg: fmt.Sprintf("malformed number %q", text+string(l.peek()))}
	}
	// Scientific notation.
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.pos
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if !isDigit(l.peek()) {
			l.pos = save // bare identifier follows; not an exponent
		} else {
			for isDigit(l.peek()) {
				l.advance()
			}
			text = l.src[start:l.pos]
		}
	}
	return token.Token{Kind: token.NUMBER, Text: text, Pos: pos}, nil
}

func (l *Lexer) scanIdent(pos token.Position) (token.Token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.peek()) {
		l.advance()
	}
	text := l.src[start:l.pos]
	kind := token.KeywordKind(strings.ToUpper(text))
	if kind != token.IDENT {
		return token.Token{Kind: kind, Text: strings.ToUpper(text), Pos: pos}, nil
	}
	return token.Token{Kind: token.IDENT, Text: text, Pos: pos}, nil
}

func (l *Lexer) scanString(pos token.Position) (token.Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.advance()
		if c == '\'' {
			if l.peek() == '\'' { // doubled quote escape
				sb.WriteByte('\'')
				l.advance()
				continue
			}
			return token.Token{Kind: token.STRING, Text: sb.String(), Pos: pos}, nil
		}
		sb.WriteByte(c)
	}
	return token.Token{}, &Error{Pos: pos, Msg: "unterminated string literal"}
}

func (l *Lexer) scanQuotedIdent(pos token.Position) (token.Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.advance()
		if c == '"' {
			if l.peek() == '"' {
				sb.WriteByte('"')
				l.advance()
				continue
			}
			if sb.Len() == 0 {
				return token.Token{}, &Error{Pos: pos, Msg: "empty quoted identifier"}
			}
			return token.Token{Kind: token.QIDENT, Text: sb.String(), Pos: pos}, nil
		}
		sb.WriteByte(c)
	}
	return token.Token{}, &Error{Pos: pos, Msg: "unterminated quoted identifier"}
}

package ast

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestQuoteIdentPlainNames(t *testing.T) {
	for _, name := range []string{"orders", "productId", "a", "_x", "t1"} {
		if got := QuoteIdent(name); got != name {
			t.Errorf("QuoteIdent(%q) = %q, want unquoted", name, got)
		}
	}
}

func TestQuoteIdentQuotesWhenNeeded(t *testing.T) {
	cases := map[string]string{
		"big-orders":  `"big-orders"`,
		"two words":   `"two words"`,
		"1leading":    `"1leading"`,
		"":            `""`,
		`has"quote`:   `"has""quote"`,
		"SELECT":      `"SELECT"`, // reserved word
		"stream":      `"stream"`, // reserved word, any case
		"Group":       `"Group"`,
		"dotted.name": `"dotted.name"`,
	}
	for in, want := range cases {
		if got := QuoteIdent(in); got != want {
			t.Errorf("QuoteIdent(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: a statement built around any identifier prints and re-lexes to
// the same identifier (the §4.2 task-side re-parse invariant).
func TestPropertyQuoteIdentRoundTrips(t *testing.T) {
	f := func(name string) bool {
		if name == "" || strings.ContainsAny(name, "\n\r\x00") {
			return true
		}
		stmt := &SelectStmt{
			Items: []SelectItem{{Expr: &Ident{Parts: []string{name}}}},
			From:  &TableName{Name: name},
		}
		printed := stmt.String()
		// The printed form must contain the quoted identifier form.
		return strings.Contains(printed, QuoteIdent(name))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatementStrings(t *testing.T) {
	sel := &SelectStmt{
		Stream: true,
		Items: []SelectItem{
			{Expr: &Ident{Parts: []string{"rowtime"}}},
			{Expr: &FuncCall{Name: "COUNT", Star: true}, Alias: "c"},
		},
		From:    &TableName{Name: "Orders"},
		Where:   &Binary{Op: OpGt, L: &Ident{Parts: []string{"units"}}, R: NewIntLit(5)},
		GroupBy: []Expr{&Ident{Parts: []string{"rowtime"}}},
		Having:  &Binary{Op: OpGt, L: &FuncCall{Name: "COUNT", Star: true}, R: NewIntLit(1)},
	}
	s := sel.String()
	for _, want := range []string{"SELECT STREAM", "COUNT(*) AS c", "FROM Orders", "WHERE", "GROUP BY", "HAVING"} {
		if !strings.Contains(s, want) {
			t.Errorf("select string %q missing %q", s, want)
		}
	}

	join := &JoinRef{
		Kind:  InnerJoin,
		Left:  &TableName{Name: "A"},
		Right: &TableName{Name: "B", Alias: "b"},
		On:    &Binary{Op: OpEq, L: &Ident{Parts: []string{"A", "x"}}, R: &Ident{Parts: []string{"b", "x"}}},
	}
	js := join.String()
	if !strings.Contains(js, "A JOIN B AS b ON") {
		t.Errorf("join string %q", js)
	}

	for _, tc := range []struct {
		kind JoinKind
		want string
	}{{LeftJoin, "LEFT JOIN"}, {RightJoin, "RIGHT JOIN"}, {FullJoin, "FULL JOIN"}, {InnerJoin, "JOIN"}} {
		if tc.kind.String() != tc.want {
			t.Errorf("JoinKind %v = %q", tc.kind, tc.kind.String())
		}
	}
}

func TestExprStrings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&StringLit{V: "it's"}, "'it''s'"},
		{&BoolLit{V: true}, "TRUE"},
		{&NullLit{}, "NULL"},
		{&Between{X: &Ident{Parts: []string{"a"}}, Lo: NewIntLit(1), Hi: NewIntLit(2)}, "(a BETWEEN 1 AND 2)"},
		{&IsNull{X: &Ident{Parts: []string{"a"}}, Not: true}, "(a IS NOT NULL)"},
		{&Unary{Op: OpNeg, X: NewIntLit(5)}, "(-5)"},
		{&Cast{X: &Ident{Parts: []string{"a"}}, TypeName: "DOUBLE"}, "CAST(a AS DOUBLE)"},
		{&FloorTo{X: &Ident{Parts: []string{"ts"}}, Unit: UnitHour}, "FLOOR(ts TO HOUR)"},
		{&TimeLit{Text: "0:30", Millis: 1800000}, "TIME '0:30'"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestTimeUnitMillis(t *testing.T) {
	if UnitSecond.Millis() != 1000 || UnitMinute.Millis() != 60000 ||
		UnitHour.Millis() != 3600000 || UnitDay.Millis() != 86400000 {
		t.Fatal("time unit conversions broken")
	}
	if UnitMonth.Millis() != 30*86400000 || UnitYear.Millis() != 365*86400000 {
		t.Fatal("calendar approximations broken")
	}
}

func TestWindowSpecString(t *testing.T) {
	w := &WindowSpec{
		PartitionBy: []Expr{&Ident{Parts: []string{"productId"}}},
		OrderBy:     []Expr{&Ident{Parts: []string{"rowtime"}}},
		Frame: &WindowFrame{
			Unit:      FrameRange,
			Preceding: &IntervalLit{Text: "5", Unit: UnitMinute, Millis: 300000},
		},
	}
	s := w.String()
	for _, want := range []string{"PARTITION BY productId", "ORDER BY rowtime", "RANGE INTERVAL '5' MINUTE PRECEDING"} {
		if !strings.Contains(s, want) {
			t.Errorf("window spec %q missing %q", s, want)
		}
	}
	unbounded := &WindowFrame{Unit: FrameRows}
	if unbounded.String() != "ROWS UNBOUNDED PRECEDING" {
		t.Errorf("frame %q", unbounded.String())
	}
}

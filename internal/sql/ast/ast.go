// Package ast defines the abstract syntax tree for SamzaSQL's dialect:
// standard SQL SELECT (with subqueries, joins, GROUP BY, HAVING, analytic
// functions) plus the streaming extensions of §3 — the STREAM keyword,
// HOP/TUMBLE grouped windows, OVER-clause sliding windows, and INTERVAL
// window bounds inside join conditions.
//
// Every node implements String() producing parseable SQL, so queries can be
// round-tripped (used by property tests and by the shell's EXPLAIN output).
package ast

import (
	"fmt"
	"strings"

	"samzasql/internal/sql/token"
)

// QuoteIdent renders an identifier, double-quoting it when it is not a
// plain unreserved name, so that printed statements re-parse (the task-side
// planner re-parses the shell's printed query, §4.2).
func QuoteIdent(s string) string {
	plain := s != ""
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			plain = false
			break
		}
	}
	if plain && token.KeywordKind(strings.ToUpper(s)) != token.IDENT {
		plain = false
	}
	if plain {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func quoteAll(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = QuoteIdent(n)
	}
	return out
}

// Statement is a top-level SQL statement.
type Statement interface {
	fmt.Stringer
	stmtNode()
}

// SelectStmt is a (possibly streaming) query.
type SelectStmt struct {
	// Stream is true when SELECT STREAM was written (§3.3).
	Stream   bool
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
}

func (*SelectStmt) stmtNode() {}

// SelectItem is one projection: an expression with an optional alias, or a
// star.
type SelectItem struct {
	// Star is set for `*` or `alias.*`; Expr is nil in that case and
	// StarTable holds the qualifier ("" for a bare star).
	Star      bool
	StarTable string
	Expr      Expr
	Alias     string
}

func (s SelectItem) String() string {
	if s.Star {
		if s.StarTable != "" {
			return QuoteIdent(s.StarTable) + ".*"
		}
		return "*"
	}
	if s.Alias != "" {
		return fmt.Sprintf("%s AS %s", s.Expr, QuoteIdent(s.Alias))
	}
	return s.Expr.String()
}

func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Stream {
		sb.WriteString("STREAM ")
	}
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	if s.From != nil {
		sb.WriteString(" FROM ")
		sb.WriteString(s.From.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(s.Having.String())
	}
	return sb.String()
}

// CreateViewStmt is CREATE VIEW name [(cols)] AS select (§3.5).
type CreateViewStmt struct {
	Name    string
	Columns []string
	Select  *SelectStmt
}

func (*CreateViewStmt) stmtNode() {}

func (c *CreateViewStmt) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE VIEW ")
	sb.WriteString(QuoteIdent(c.Name))
	if len(c.Columns) > 0 {
		sb.WriteString(" (")
		sb.WriteString(strings.Join(quoteAll(c.Columns), ", "))
		sb.WriteString(")")
	}
	sb.WriteString(" AS ")
	sb.WriteString(c.Select.String())
	return sb.String()
}

// InsertStmt is INSERT INTO stream SELECT ..., used to route a query's
// output to a named stream.
type InsertStmt struct {
	Target  string
	Columns []string
	Select  *SelectStmt
}

func (*InsertStmt) stmtNode() {}

func (i *InsertStmt) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO ")
	sb.WriteString(QuoteIdent(i.Target))
	if len(i.Columns) > 0 {
		sb.WriteString(" (")
		sb.WriteString(strings.Join(quoteAll(i.Columns), ", "))
		sb.WriteString(")")
	}
	sb.WriteString(" ")
	sb.WriteString(i.Select.String())
	return sb.String()
}

// TableRef is a FROM-clause item.
type TableRef interface {
	fmt.Stringer
	tableRefNode()
}

// TableName references a stream, table or view by name.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) tableRefNode() {}

func (t *TableName) String() string {
	if t.Alias != "" {
		return QuoteIdent(t.Name) + " AS " + QuoteIdent(t.Alias)
	}
	return QuoteIdent(t.Name)
}

// SubqueryRef is a parenthesized SELECT in FROM.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

func (*SubqueryRef) tableRefNode() {}

func (s *SubqueryRef) String() string {
	out := "(" + s.Select.String() + ")"
	if s.Alias != "" {
		out += " AS " + QuoteIdent(s.Alias)
	}
	return out
}

// JoinKind enumerates supported join types.
type JoinKind int

// Join kinds.
const (
	InnerJoin JoinKind = iota
	LeftJoin
	RightJoin
	FullJoin
)

func (k JoinKind) String() string {
	switch k {
	case LeftJoin:
		return "LEFT JOIN"
	case RightJoin:
		return "RIGHT JOIN"
	case FullJoin:
		return "FULL JOIN"
	default:
		return "JOIN"
	}
}

// JoinRef is an explicit join with an ON condition (§3.8).
type JoinRef struct {
	Kind  JoinKind
	Left  TableRef
	Right TableRef
	On    Expr
}

func (*JoinRef) tableRefNode() {}

func (j *JoinRef) String() string {
	return fmt.Sprintf("%s %s %s ON %s", j.Left, j.Kind, j.Right, j.On)
}

package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is any SQL expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// Ident is a possibly qualified column reference: a, or t.a.
type Ident struct {
	// Parts are the dot-separated name components, e.g. ["Orders","units"].
	Parts []string
}

func (*Ident) exprNode() {}

func (i *Ident) String() string {
	parts := make([]string, len(i.Parts))
	for j, p := range i.Parts {
		parts[j] = QuoteIdent(p)
	}
	return strings.Join(parts, ".")
}

// Column returns the final name component.
func (i *Ident) Column() string { return i.Parts[len(i.Parts)-1] }

// Qualifier returns the table qualifier, or "".
func (i *Ident) Qualifier() string {
	if len(i.Parts) > 1 {
		return strings.Join(i.Parts[:len(i.Parts)-1], ".")
	}
	return ""
}

// NumberLit is an integer or floating-point literal.
type NumberLit struct {
	Text  string
	IsInt bool
	Int   int64
	Float float64
}

func (*NumberLit) exprNode() {}

func (n *NumberLit) String() string { return n.Text }

// NewIntLit builds an integer literal.
func NewIntLit(v int64) *NumberLit {
	return &NumberLit{Text: strconv.FormatInt(v, 10), IsInt: true, Int: v, Float: float64(v)}
}

// NewFloatLit builds a floating-point literal.
func NewFloatLit(v float64) *NumberLit {
	return &NumberLit{Text: strconv.FormatFloat(v, 'g', -1, 64), Float: v}
}

// StringLit is a quoted string literal.
type StringLit struct {
	V string
}

func (*StringLit) exprNode() {}

func (s *StringLit) String() string {
	return "'" + strings.ReplaceAll(s.V, "'", "''") + "'"
}

// BoolLit is TRUE or FALSE.
type BoolLit struct {
	V bool
}

func (*BoolLit) exprNode() {}

func (b *BoolLit) String() string {
	if b.V {
		return "TRUE"
	}
	return "FALSE"
}

// NullLit is NULL.
type NullLit struct{}

func (*NullLit) exprNode() {}

func (*NullLit) String() string { return "NULL" }

// TimeUnit is a calendar unit used in INTERVAL literals and FLOOR ... TO.
type TimeUnit int

// Units.
const (
	UnitYear TimeUnit = iota
	UnitMonth
	UnitDay
	UnitHour
	UnitMinute
	UnitSecond
)

func (u TimeUnit) String() string {
	switch u {
	case UnitYear:
		return "YEAR"
	case UnitMonth:
		return "MONTH"
	case UnitDay:
		return "DAY"
	case UnitHour:
		return "HOUR"
	case UnitMinute:
		return "MINUTE"
	default:
		return "SECOND"
	}
}

// Millis returns the unit length in milliseconds. Months and years use the
// SQL-standard fixed approximations only for window arithmetic (30/365 days).
func (u TimeUnit) Millis() int64 {
	switch u {
	case UnitSecond:
		return 1000
	case UnitMinute:
		return 60 * 1000
	case UnitHour:
		return 60 * 60 * 1000
	case UnitDay:
		return 24 * 60 * 60 * 1000
	case UnitMonth:
		return 30 * 24 * 60 * 60 * 1000
	default: // UnitYear
		return 365 * 24 * 60 * 60 * 1000
	}
}

// IntervalLit is INTERVAL 'v' UNIT or INTERVAL 'h:m' UNIT TO UNIT (§3.6).
// Millis is the resolved duration.
type IntervalLit struct {
	Text   string
	Unit   TimeUnit
	ToUnit *TimeUnit
	Millis int64
}

func (*IntervalLit) exprNode() {}

func (i *IntervalLit) String() string {
	if i.ToUnit != nil {
		return fmt.Sprintf("INTERVAL '%s' %s TO %s", i.Text, i.Unit, *i.ToUnit)
	}
	return fmt.Sprintf("INTERVAL '%s' %s", i.Text, i.Unit)
}

// TimeLit is TIME 'h:mm[:ss]', a time-of-day offset used as a window
// alignment (Listing 5). Millis is the offset from midnight.
type TimeLit struct {
	Text   string
	Millis int64
}

func (*TimeLit) exprNode() {}

func (t *TimeLit) String() string { return fmt.Sprintf("TIME '%s'", t.Text) }

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
	OpEq
	OpNeq
	OpLt
	OpLte
	OpGt
	OpGte
	OpAnd
	OpOr
)

var binaryOpNames = map[BinaryOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpConcat: "||",
	OpEq:     "=", OpNeq: "<>", OpLt: "<", OpLte: "<=", OpGt: ">", OpGte: ">=",
	OpAnd: "AND", OpOr: "OR",
}

func (o BinaryOp) String() string { return binaryOpNames[o] }

// Comparison reports whether the operator yields a boolean from two
// comparable operands.
func (o BinaryOp) Comparison() bool { return o >= OpEq && o <= OpGte }

// Logical reports whether the operator is AND or OR.
func (o BinaryOp) Logical() bool { return o == OpAnd || o == OpOr }

// Arithmetic reports whether the operator is numeric arithmetic.
func (o BinaryOp) Arithmetic() bool { return o <= OpMod }

// Binary is L op R.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

func (*Binary) exprNode() {}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	OpNeg UnaryOp = iota
	OpNot
)

// Unary is op X.
type Unary struct {
	Op UnaryOp
	X  Expr
}

func (*Unary) exprNode() {}

func (u *Unary) String() string {
	if u.Op == OpNeg {
		return fmt.Sprintf("(-%s)", u.X)
	}
	return fmt.Sprintf("(NOT %s)", u.X)
}

// Between is X [NOT] BETWEEN Lo AND Hi — the paper expresses stream-stream
// join windows with this form (Listing 7).
type Between struct {
	Not    bool
	X      Expr
	Lo, Hi Expr
}

func (*Between) exprNode() {}

func (b *Between) String() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sBETWEEN %s AND %s)", b.X, not, b.Lo, b.Hi)
}

// InList is X [NOT] IN (e1, e2, ...).
type InList struct {
	Not  bool
	X    Expr
	List []Expr
}

func (*InList) exprNode() {}

func (i *InList) String() string {
	parts := make([]string, len(i.List))
	for j, e := range i.List {
		parts[j] = e.String()
	}
	not := ""
	if i.Not {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sIN (%s))", i.X, not, strings.Join(parts, ", "))
}

// IsNull is X IS [NOT] NULL.
type IsNull struct {
	Not bool
	X   Expr
}

func (*IsNull) exprNode() {}

func (i *IsNull) String() string {
	if i.Not {
		return fmt.Sprintf("(%s IS NOT NULL)", i.X)
	}
	return fmt.Sprintf("(%s IS NULL)", i.X)
}

// Like is X [NOT] LIKE pattern.
type Like struct {
	Not     bool
	X       Expr
	Pattern Expr
}

func (*Like) exprNode() {}

func (l *Like) String() string {
	not := ""
	if l.Not {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sLIKE %s)", l.X, not, l.Pattern)
}

// WhenClause is one WHEN cond THEN result arm.
type WhenClause struct {
	When Expr
	Then Expr
}

// Case is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr
}

func (*Case) exprNode() {}

func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if c.Operand != nil {
		sb.WriteString(" " + c.Operand.String())
	}
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.When, w.Then)
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// Cast is CAST(X AS type).
type Cast struct {
	X        Expr
	TypeName string
}

func (*Cast) exprNode() {}

func (c *Cast) String() string { return fmt.Sprintf("CAST(%s AS %s)", c.X, c.TypeName) }

// FloorTo is FLOOR(x TO unit), the paper's tumbling-window-by-truncation
// idiom (Listing 3).
type FloorTo struct {
	X    Expr
	Unit TimeUnit
}

func (*FloorTo) exprNode() {}

func (f *FloorTo) String() string { return fmt.Sprintf("FLOOR(%s TO %s)", f.X, f.Unit) }

// FrameUnit selects RANGE (value-based) or ROWS (count-based) framing.
type FrameUnit int

// Frame units.
const (
	FrameRange FrameUnit = iota
	FrameRows
)

// WindowFrame bounds an analytic function's window: the paper's sliding
// windows use RANGE INTERVAL 'n' unit PRECEDING (§3.7).
type WindowFrame struct {
	Unit FrameUnit
	// Preceding is the lower bound: an IntervalLit (RANGE) or NumberLit
	// (ROWS); nil means UNBOUNDED PRECEDING.
	Preceding Expr
}

func (f *WindowFrame) String() string {
	unit := "RANGE"
	if f.Unit == FrameRows {
		unit = "ROWS"
	}
	if f.Preceding == nil {
		return unit + " UNBOUNDED PRECEDING"
	}
	return fmt.Sprintf("%s %s PRECEDING", unit, f.Preceding)
}

// WindowSpec is an OVER (...) clause.
type WindowSpec struct {
	PartitionBy []Expr
	OrderBy     []Expr
	Frame       *WindowFrame
}

func (w *WindowSpec) String() string {
	var parts []string
	if len(w.PartitionBy) > 0 {
		ps := make([]string, len(w.PartitionBy))
		for i, e := range w.PartitionBy {
			ps[i] = e.String()
		}
		parts = append(parts, "PARTITION BY "+strings.Join(ps, ", "))
	}
	if len(w.OrderBy) > 0 {
		os := make([]string, len(w.OrderBy))
		for i, e := range w.OrderBy {
			os[i] = e.String()
		}
		parts = append(parts, "ORDER BY "+strings.Join(os, ", "))
	}
	if w.Frame != nil {
		parts = append(parts, w.Frame.String())
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// FuncCall is a scalar, aggregate or analytic function call. HOP and TUMBLE
// (§3.6) parse as FuncCalls and are interpreted by the validator when they
// appear in GROUP BY.
type FuncCall struct {
	// Name is upper-cased.
	Name string
	// Star is set for COUNT(*).
	Star     bool
	Distinct bool
	Args     []Expr
	// Over is non-nil for analytic calls.
	Over *WindowSpec
}

func (*FuncCall) exprNode() {}

func (f *FuncCall) String() string {
	var sb strings.Builder
	sb.WriteString(f.Name)
	sb.WriteString("(")
	if f.Star {
		sb.WriteString("*")
	} else {
		if f.Distinct {
			sb.WriteString("DISTINCT ")
		}
		for i, a := range f.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
	}
	sb.WriteString(")")
	if f.Over != nil {
		sb.WriteString(" OVER ")
		sb.WriteString(f.Over.String())
	}
	return sb.String()
}

// Subquery is a scalar or EXISTS subquery expression.
type Subquery struct {
	Exists bool
	Select *SelectStmt
}

func (*Subquery) exprNode() {}

func (s *Subquery) String() string {
	if s.Exists {
		return fmt.Sprintf("EXISTS (%s)", s.Select)
	}
	return fmt.Sprintf("(%s)", s.Select)
}

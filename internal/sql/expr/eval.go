package expr

import (
	"fmt"
	"math"
	"strings"

	"samzasql/internal/sql/types"
)

// Evaluator computes an expression over one input row ([]any). SQL NULL is
// Go nil. Returned errors abort message processing (they indicate type
// corruption, not data conditions).
type Evaluator func(row []any) (any, error)

// Compile lowers a bound expression into an evaluator closure tree. This is
// the Go stand-in for the paper's Janino code generation: each node becomes
// a closure, so evaluation is a direct call chain with no interpretation
// dispatch over the AST at runtime.
func Compile(e Expr) (Evaluator, error) {
	switch n := e.(type) {
	case *ColRef:
		idx := n.Idx
		return func(row []any) (any, error) {
			if idx >= len(row) {
				return nil, fmt.Errorf("expr: row has %d columns, need %d", len(row), idx+1)
			}
			return row[idx], nil
		}, nil
	case *Const:
		v := n.V
		return func([]any) (any, error) { return v, nil }, nil
	case *Binary:
		return compileBinary(n)
	case *Not:
		x, err := Compile(n.X)
		if err != nil {
			return nil, err
		}
		return func(row []any) (any, error) {
			v, err := x(row)
			if err != nil || v == nil {
				return nil, err
			}
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("expr: NOT over %T", v)
			}
			return !b, nil
		}, nil
	case *Neg:
		x, err := Compile(n.X)
		if err != nil {
			return nil, err
		}
		return func(row []any) (any, error) {
			v, err := x(row)
			if err != nil || v == nil {
				return nil, err
			}
			switch t := v.(type) {
			case int64:
				return -t, nil
			case float64:
				return -t, nil
			default:
				return nil, fmt.Errorf("expr: negation of %T", v)
			}
		}, nil
	case *IsNull:
		x, err := Compile(n.X)
		if err != nil {
			return nil, err
		}
		not := n.Not
		return func(row []any) (any, error) {
			v, err := x(row)
			if err != nil {
				return nil, err
			}
			return (v == nil) != not, nil
		}, nil
	case *Case:
		return compileCase(n)
	case *Like:
		return compileLike(n)
	case *InList:
		return compileInList(n)
	case *Cast:
		return compileCast(n)
	case *Call:
		return compileCall(n)
	case *FloorTime:
		x, err := Compile(n.X)
		if err != nil {
			return nil, err
		}
		unit := n.UnitMillis
		return func(row []any) (any, error) {
			v, err := x(row)
			if err != nil || v == nil {
				return nil, err
			}
			ts, ok := v.(int64)
			if !ok {
				return nil, fmt.Errorf("expr: FLOOR TO over %T", v)
			}
			return (ts / unit) * unit, nil
		}, nil
	default:
		return nil, fmt.Errorf("expr: cannot compile %T", e)
	}
}

// MustCompile panics on compile errors; for expressions built by the
// planner, failure is a bug.
func MustCompile(e Expr) Evaluator {
	ev, err := Compile(e)
	if err != nil {
		panic(err)
	}
	return ev
}

func compileBinary(n *Binary) (Evaluator, error) {
	l, err := Compile(n.L)
	if err != nil {
		return nil, err
	}
	r, err := Compile(n.R)
	if err != nil {
		return nil, err
	}
	op := n.Op
	switch op {
	case And:
		return func(row []any) (any, error) {
			lv, err := l(row)
			if err != nil {
				return nil, err
			}
			// SQL three-valued logic: FALSE AND x = FALSE even for NULL x.
			if lb, ok := lv.(bool); ok && !lb {
				return false, nil
			}
			rv, err := r(row)
			if err != nil {
				return nil, err
			}
			if rb, ok := rv.(bool); ok && !rb {
				return false, nil
			}
			if lv == nil || rv == nil {
				return nil, nil
			}
			return true, nil
		}, nil
	case Or:
		return func(row []any) (any, error) {
			lv, err := l(row)
			if err != nil {
				return nil, err
			}
			if lb, ok := lv.(bool); ok && lb {
				return true, nil
			}
			rv, err := r(row)
			if err != nil {
				return nil, err
			}
			if rb, ok := rv.(bool); ok && rb {
				return true, nil
			}
			if lv == nil || rv == nil {
				return nil, nil
			}
			return false, nil
		}, nil
	case Concat:
		return func(row []any) (any, error) {
			lv, err := l(row)
			if err != nil || lv == nil {
				return nil, err
			}
			rv, err := r(row)
			if err != nil || rv == nil {
				return nil, err
			}
			return toStr(lv) + toStr(rv), nil
		}, nil
	}
	if op >= Eq && op <= Gte {
		return func(row []any) (any, error) {
			lv, err := l(row)
			if err != nil || lv == nil {
				return nil, err
			}
			rv, err := r(row)
			if err != nil || rv == nil {
				return nil, err
			}
			c, err := CompareValues(lv, rv)
			if err != nil {
				return nil, err
			}
			switch op {
			case Eq:
				return c == 0, nil
			case Neq:
				return c != 0, nil
			case Lt:
				return c < 0, nil
			case Lte:
				return c <= 0, nil
			case Gt:
				return c > 0, nil
			default:
				return c >= 0, nil
			}
		}, nil
	}
	// Arithmetic. Specialize on the planned result type for speed.
	wantInt := n.T == types.Bigint || n.T == types.Timestamp || n.T == types.Interval
	return func(row []any) (any, error) {
		lv, err := l(row)
		if err != nil || lv == nil {
			return nil, err
		}
		rv, err := r(row)
		if err != nil || rv == nil {
			return nil, err
		}
		if wantInt {
			a, aok := lv.(int64)
			b, bok := rv.(int64)
			if aok && bok {
				return intArith(op, a, b)
			}
		}
		a, err := toFloat(lv)
		if err != nil {
			return nil, err
		}
		b, err := toFloat(rv)
		if err != nil {
			return nil, err
		}
		return floatArith(op, a, b)
	}, nil
}

func intArith(op BinOp, a, b int64) (any, error) {
	switch op {
	case Add:
		return a + b, nil
	case Sub:
		return a - b, nil
	case Mul:
		return a * b, nil
	case Div:
		if b == 0 {
			return nil, fmt.Errorf("expr: division by zero")
		}
		return a / b, nil
	case Mod:
		if b == 0 {
			return nil, fmt.Errorf("expr: modulo by zero")
		}
		return a % b, nil
	default:
		return nil, fmt.Errorf("expr: bad int op %s", op)
	}
}

func floatArith(op BinOp, a, b float64) (any, error) {
	switch op {
	case Add:
		return a + b, nil
	case Sub:
		return a - b, nil
	case Mul:
		return a * b, nil
	case Div:
		if b == 0 {
			return nil, fmt.Errorf("expr: division by zero")
		}
		return a / b, nil
	case Mod:
		if b == 0 {
			return nil, fmt.Errorf("expr: modulo by zero")
		}
		return math.Mod(a, b), nil
	default:
		return nil, fmt.Errorf("expr: bad float op %s", op)
	}
}

// CompareValues orders two non-nil SQL values of compatible types.
func CompareValues(a, b any) (int, error) {
	switch av := a.(type) {
	case int64:
		switch bv := b.(type) {
		case int64:
			return cmp(av, bv), nil
		case float64:
			return cmpF(float64(av), bv), nil
		}
	case float64:
		switch bv := b.(type) {
		case int64:
			return cmpF(av, float64(bv)), nil
		case float64:
			return cmpF(av, bv), nil
		}
	case string:
		if bv, ok := b.(string); ok {
			return strings.Compare(av, bv), nil
		}
	case bool:
		if bv, ok := b.(bool); ok {
			switch {
			case av == bv:
				return 0, nil
			case !av:
				return -1, nil
			default:
				return 1, nil
			}
		}
	}
	return 0, fmt.Errorf("expr: cannot compare %T with %T", a, b)
}

func cmp(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func toFloat(v any) (float64, error) {
	switch t := v.(type) {
	case int64:
		return float64(t), nil
	case float64:
		return t, nil
	default:
		return 0, fmt.Errorf("expr: %T is not numeric", v)
	}
}

func toStr(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return fmt.Sprintf("%v", v)
}

func compileCase(n *Case) (Evaluator, error) {
	type arm struct{ when, then Evaluator }
	arms := make([]arm, len(n.Whens))
	for i, w := range n.Whens {
		we, err := Compile(w.When)
		if err != nil {
			return nil, err
		}
		te, err := Compile(w.Then)
		if err != nil {
			return nil, err
		}
		arms[i] = arm{we, te}
	}
	var elseEv Evaluator
	if n.Else != nil {
		var err error
		elseEv, err = Compile(n.Else)
		if err != nil {
			return nil, err
		}
	}
	return func(row []any) (any, error) {
		for _, a := range arms {
			c, err := a.when(row)
			if err != nil {
				return nil, err
			}
			if b, ok := c.(bool); ok && b {
				return a.then(row)
			}
		}
		if elseEv != nil {
			return elseEv(row)
		}
		return nil, nil
	}, nil
}

func compileLike(n *Like) (Evaluator, error) {
	x, err := Compile(n.X)
	if err != nil {
		return nil, err
	}
	p, err := Compile(n.Pattern)
	if err != nil {
		return nil, err
	}
	not := n.Not
	return func(row []any) (any, error) {
		xv, err := x(row)
		if err != nil || xv == nil {
			return nil, err
		}
		pv, err := p(row)
		if err != nil || pv == nil {
			return nil, err
		}
		s, ok1 := xv.(string)
		pat, ok2 := pv.(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("expr: LIKE over %T, %T", xv, pv)
		}
		return likeMatch(s, pat) != not, nil
	}, nil
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) bool {
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func compileInList(n *InList) (Evaluator, error) {
	x, err := Compile(n.X)
	if err != nil {
		return nil, err
	}
	items := make([]Evaluator, len(n.List))
	for i, e := range n.List {
		ev, err := Compile(e)
		if err != nil {
			return nil, err
		}
		items[i] = ev
	}
	not := n.Not
	return func(row []any) (any, error) {
		xv, err := x(row)
		if err != nil || xv == nil {
			return nil, err
		}
		sawNull := false
		for _, it := range items {
			iv, err := it(row)
			if err != nil {
				return nil, err
			}
			if iv == nil {
				sawNull = true
				continue
			}
			c, err := CompareValues(xv, iv)
			if err != nil {
				return nil, err
			}
			if c == 0 {
				return !not, nil
			}
		}
		if sawNull {
			return nil, nil // unknown
		}
		return not, nil
	}, nil
}

func compileCast(n *Cast) (Evaluator, error) {
	x, err := Compile(n.X)
	if err != nil {
		return nil, err
	}
	to := n.T
	return func(row []any) (any, error) {
		v, err := x(row)
		if err != nil || v == nil {
			return nil, err
		}
		return CastValue(v, to)
	}, nil
}

// CastValue converts a non-nil value to the target type.
func CastValue(v any, to types.Type) (any, error) {
	switch to {
	case types.Bigint, types.Timestamp, types.Interval:
		switch t := v.(type) {
		case int64:
			return t, nil
		case float64:
			return int64(t), nil
		case string:
			var n int64
			if _, err := fmt.Sscanf(strings.TrimSpace(t), "%d", &n); err != nil {
				return nil, fmt.Errorf("expr: cannot cast %q to %s", t, to)
			}
			return n, nil
		case bool:
			if t {
				return int64(1), nil
			}
			return int64(0), nil
		}
	case types.Double:
		switch t := v.(type) {
		case int64:
			return float64(t), nil
		case float64:
			return t, nil
		case string:
			var f float64
			if _, err := fmt.Sscanf(strings.TrimSpace(t), "%g", &f); err != nil {
				return nil, fmt.Errorf("expr: cannot cast %q to DOUBLE", t)
			}
			return f, nil
		}
	case types.Varchar:
		return toStr(v), nil
	case types.Boolean:
		switch t := v.(type) {
		case bool:
			return t, nil
		case string:
			switch strings.ToUpper(strings.TrimSpace(t)) {
			case "TRUE", "T", "1":
				return true, nil
			case "FALSE", "F", "0":
				return false, nil
			}
		}
	case types.AnyType:
		return v, nil
	}
	return nil, fmt.Errorf("expr: cannot cast %T to %s", v, to)
}

// Package expr defines SamzaSQL's bound expression IR and its compiler. The
// validator binds AST expressions against input row types into this IR; the
// physical operators compile IR into evaluator closures over tuples
// represented as []any arrays — the Go analog of the Janino/Linq4j code
// generation the paper uses (§4.2), operating on the same tuple-as-array
// representation that Figure 4's AvroToArray step produces.
package expr

import (
	"fmt"

	"samzasql/internal/sql/types"
)

// Expr is a bound (validated, typed, column-resolved) expression.
type Expr interface {
	// Type is the expression's result type.
	Type() types.Type
	fmt.Stringer
}

// ColRef reads column Idx of the input row.
type ColRef struct {
	Idx  int
	Name string
	T    types.Type
}

// Type implements Expr.
func (c *ColRef) Type() types.Type { return c.T }

func (c *ColRef) String() string { return fmt.Sprintf("$%d:%s", c.Idx, c.Name) }

// Const is a literal value: int64, float64, string, bool or nil.
type Const struct {
	V any
	T types.Type
}

// Type implements Expr.
func (c *Const) Type() types.Type { return c.T }

func (c *Const) String() string {
	if s, ok := c.V.(string); ok {
		return fmt.Sprintf("'%s'", s)
	}
	return fmt.Sprintf("%v", c.V)
}

// BinOp enumerates binary operations with SQL null semantics.
type BinOp int

// Binary operations.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	Concat
	Eq
	Neq
	Lt
	Lte
	Gt
	Gte
	And
	Or
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "||", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}

func (o BinOp) String() string { return binOpNames[o] }

// Binary applies Op to L and R.
type Binary struct {
	Op   BinOp
	L, R Expr
	T    types.Type
}

// Type implements Expr.
func (b *Binary) Type() types.Type { return b.T }

func (b *Binary) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// Not negates a boolean.
type Not struct {
	X Expr
}

// Type implements Expr.
func (*Not) Type() types.Type { return types.Boolean }

func (n *Not) String() string { return fmt.Sprintf("NOT %s", n.X) }

// Neg negates a number.
type Neg struct {
	X Expr
}

// Type implements Expr.
func (n *Neg) Type() types.Type { return n.X.Type() }

func (n *Neg) String() string { return fmt.Sprintf("-%s", n.X) }

// IsNull tests for SQL NULL.
type IsNull struct {
	Not bool
	X   Expr
}

// Type implements Expr.
func (*IsNull) Type() types.Type { return types.Boolean }

func (i *IsNull) String() string {
	if i.Not {
		return fmt.Sprintf("(%s IS NOT NULL)", i.X)
	}
	return fmt.Sprintf("(%s IS NULL)", i.X)
}

// Case is a searched CASE (operand form is lowered to searched by the
// binder).
type Case struct {
	Whens []CaseWhen
	Else  Expr // may be nil => NULL
	T     types.Type
}

// CaseWhen is one arm.
type CaseWhen struct {
	When Expr
	Then Expr
}

// Type implements Expr.
func (c *Case) Type() types.Type { return c.T }

func (c *Case) String() string {
	s := "CASE"
	for _, w := range c.Whens {
		s += fmt.Sprintf(" WHEN %s THEN %s", w.When, w.Then)
	}
	if c.Else != nil {
		s += " ELSE " + c.Else.String()
	}
	return s + " END"
}

// Like matches X against a SQL LIKE pattern ('%' and '_' wildcards).
type Like struct {
	Not     bool
	X       Expr
	Pattern Expr
}

// Type implements Expr.
func (*Like) Type() types.Type { return types.Boolean }

func (l *Like) String() string {
	op := "LIKE"
	if l.Not {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("(%s %s %s)", l.X, op, l.Pattern)
}

// InList tests membership in a literal list.
type InList struct {
	Not  bool
	X    Expr
	List []Expr
}

// Type implements Expr.
func (*InList) Type() types.Type { return types.Boolean }

func (i *InList) String() string {
	op := "IN"
	if i.Not {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (...))", i.X, op)
}

// Cast converts X to T.
type Cast struct {
	X Expr
	T types.Type
}

// Type implements Expr.
func (c *Cast) Type() types.Type { return c.T }

func (c *Cast) String() string { return fmt.Sprintf("CAST(%s AS %s)", c.X, c.T) }

// Call invokes a scalar builtin (GREATEST, LEAST, ABS, MOD, UPPER, LOWER,
// SUBSTRING, CHAR_LENGTH, FLOOR, CEIL, COALESCE).
type Call struct {
	Fn   string
	Args []Expr
	T    types.Type
}

// Type implements Expr.
func (c *Call) Type() types.Type { return c.T }

func (c *Call) String() string {
	s := c.Fn + "("
	for i, a := range c.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

// FloorTime truncates a timestamp to a unit boundary (FLOOR(ts TO HOUR)).
type FloorTime struct {
	X Expr
	// UnitMillis is the truncation granularity.
	UnitMillis int64
	UnitName   string
}

// Type implements Expr.
func (*FloorTime) Type() types.Type { return types.Timestamp }

func (f *FloorTime) String() string { return fmt.Sprintf("FLOOR(%s TO %s)", f.X, f.UnitName) }

package expr

import (
	"fmt"
	"math"
	"strings"

	"samzasql/internal/sql/types"
	"samzasql/internal/sql/udf"
)

// ScalarFunc describes a builtin scalar function's typing rule.
type ScalarFunc struct {
	Name string
	// MinArgs/MaxArgs bound the argument count (MaxArgs<0 = variadic).
	MinArgs, MaxArgs int
	// ResultType computes the result type from argument types.
	ResultType func(args []types.Type) (types.Type, error)
}

// Builtins lists the scalar functions the binder accepts.
var Builtins = map[string]*ScalarFunc{
	"GREATEST": {Name: "GREATEST", MinArgs: 1, MaxArgs: -1, ResultType: commonArgs},
	"LEAST":    {Name: "LEAST", MinArgs: 1, MaxArgs: -1, ResultType: commonArgs},
	"COALESCE": {Name: "COALESCE", MinArgs: 1, MaxArgs: -1, ResultType: commonArgs},
	"ABS":      {Name: "ABS", MinArgs: 1, MaxArgs: 1, ResultType: firstArg},
	"MOD":      {Name: "MOD", MinArgs: 2, MaxArgs: 2, ResultType: commonArgs},
	"POWER":    {Name: "POWER", MinArgs: 2, MaxArgs: 2, ResultType: alwaysDouble},
	"SQRT":     {Name: "SQRT", MinArgs: 1, MaxArgs: 1, ResultType: alwaysDouble},
	"LN":       {Name: "LN", MinArgs: 1, MaxArgs: 1, ResultType: alwaysDouble},
	"FLOOR":    {Name: "FLOOR", MinArgs: 1, MaxArgs: 1, ResultType: firstArg},
	"CEIL":     {Name: "CEIL", MinArgs: 1, MaxArgs: 1, ResultType: firstArg},
	"UPPER":    {Name: "UPPER", MinArgs: 1, MaxArgs: 1, ResultType: alwaysVarchar},
	"LOWER":    {Name: "LOWER", MinArgs: 1, MaxArgs: 1, ResultType: alwaysVarchar},
	"TRIM":     {Name: "TRIM", MinArgs: 1, MaxArgs: 1, ResultType: alwaysVarchar},
	"SUBSTRING": {Name: "SUBSTRING", MinArgs: 2, MaxArgs: 3,
		ResultType: alwaysVarchar},
	"CHAR_LENGTH": {Name: "CHAR_LENGTH", MinArgs: 1, MaxArgs: 1,
		ResultType: alwaysBigint},
}

func commonArgs(args []types.Type) (types.Type, error) {
	t := args[0]
	var err error
	for _, a := range args[1:] {
		t, err = types.Common(t, a)
		if err != nil {
			return types.Unknown, err
		}
	}
	return t, nil
}

func firstArg(args []types.Type) (types.Type, error) { return args[0], nil }
func alwaysDouble([]types.Type) (types.Type, error)  { return types.Double, nil }
func alwaysVarchar([]types.Type) (types.Type, error) { return types.Varchar, nil }
func alwaysBigint([]types.Type) (types.Type, error)  { return types.Bigint, nil }

func compileCall(n *Call) (Evaluator, error) {
	args := make([]Evaluator, len(n.Args))
	for i, a := range n.Args {
		ev, err := Compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = ev
	}
	evalArgs := func(row []any) ([]any, error) {
		out := make([]any, len(args))
		for i, a := range args {
			v, err := a(row)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	switch n.Fn {
	case "GREATEST", "LEAST":
		wantGreatest := n.Fn == "GREATEST"
		return func(row []any) (any, error) {
			vs, err := evalArgs(row)
			if err != nil {
				return nil, err
			}
			var best any
			for _, v := range vs {
				if v == nil {
					return nil, nil // SQL: NULL argument => NULL
				}
				if best == nil {
					best = v
					continue
				}
				c, err := CompareValues(v, best)
				if err != nil {
					return nil, err
				}
				if (wantGreatest && c > 0) || (!wantGreatest && c < 0) {
					best = v
				}
			}
			return best, nil
		}, nil
	case "COALESCE":
		return func(row []any) (any, error) {
			for _, a := range args {
				v, err := a(row)
				if err != nil {
					return nil, err
				}
				if v != nil {
					return v, nil
				}
			}
			return nil, nil
		}, nil
	case "ABS":
		return unaryNumeric(args[0], func(i int64) any { return absI(i) },
			func(f float64) any { return math.Abs(f) }), nil
	case "MOD":
		return func(row []any) (any, error) {
			vs, err := evalArgs(row)
			if err != nil {
				return nil, err
			}
			if vs[0] == nil || vs[1] == nil {
				return nil, nil
			}
			a, aok := vs[0].(int64)
			b, bok := vs[1].(int64)
			if aok && bok {
				return intArith(Mod, a, b)
			}
			af, err := toFloat(vs[0])
			if err != nil {
				return nil, err
			}
			bf, err := toFloat(vs[1])
			if err != nil {
				return nil, err
			}
			return floatArith(Mod, af, bf)
		}, nil
	case "POWER":
		return func(row []any) (any, error) {
			vs, err := evalArgs(row)
			if err != nil {
				return nil, err
			}
			if vs[0] == nil || vs[1] == nil {
				return nil, nil
			}
			a, err := toFloat(vs[0])
			if err != nil {
				return nil, err
			}
			b, err := toFloat(vs[1])
			if err != nil {
				return nil, err
			}
			return math.Pow(a, b), nil
		}, nil
	case "SQRT", "LN":
		fn := math.Sqrt
		if n.Fn == "LN" {
			fn = math.Log
		}
		return func(row []any) (any, error) {
			v, err := args[0](row)
			if err != nil || v == nil {
				return nil, err
			}
			f, err := toFloat(v)
			if err != nil {
				return nil, err
			}
			return fn(f), nil
		}, nil
	case "FLOOR", "CEIL":
		ceil := n.Fn == "CEIL"
		return unaryNumeric(args[0], func(i int64) any { return i },
			func(f float64) any {
				if ceil {
					return math.Ceil(f)
				}
				return math.Floor(f)
			}), nil
	case "UPPER", "LOWER", "TRIM":
		var fn func(string) string
		switch n.Fn {
		case "UPPER":
			fn = strings.ToUpper
		case "LOWER":
			fn = strings.ToLower
		default:
			fn = strings.TrimSpace
		}
		return func(row []any) (any, error) {
			v, err := args[0](row)
			if err != nil || v == nil {
				return nil, err
			}
			s, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("expr: %s over %T", n.Fn, v)
			}
			return fn(s), nil
		}, nil
	case "SUBSTRING":
		return func(row []any) (any, error) {
			vs, err := evalArgs(row)
			if err != nil {
				return nil, err
			}
			for _, v := range vs {
				if v == nil {
					return nil, nil
				}
			}
			s, ok := vs[0].(string)
			if !ok {
				return nil, fmt.Errorf("expr: SUBSTRING over %T", vs[0])
			}
			start, ok := vs[1].(int64)
			if !ok {
				return nil, fmt.Errorf("expr: SUBSTRING start is %T", vs[1])
			}
			// SQL substring is 1-based.
			i := int(start) - 1
			if i < 0 {
				i = 0
			}
			if i > len(s) {
				return "", nil
			}
			out := s[i:]
			if len(vs) == 3 {
				ln, ok := vs[2].(int64)
				if !ok {
					return nil, fmt.Errorf("expr: SUBSTRING length is %T", vs[2])
				}
				if ln < 0 {
					ln = 0
				}
				if int(ln) < len(out) {
					out = out[:ln]
				}
			}
			return out, nil
		}, nil
	case "CHAR_LENGTH":
		return func(row []any) (any, error) {
			v, err := args[0](row)
			if err != nil || v == nil {
				return nil, err
			}
			s, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("expr: CHAR_LENGTH over %T", v)
			}
			return int64(len(s)), nil
		}, nil
	default:
		if def, ok := udf.LookupScalar(n.Fn); ok {
			eval := def.Eval
			return func(row []any) (any, error) {
				vs, err := evalArgs(row)
				if err != nil {
					return nil, err
				}
				return eval(vs)
			}, nil
		}
		return nil, fmt.Errorf("expr: unknown function %s", n.Fn)
	}
}

func unaryNumeric(arg Evaluator, onInt func(int64) any, onFloat func(float64) any) Evaluator {
	return func(row []any) (any, error) {
		v, err := arg(row)
		if err != nil || v == nil {
			return nil, err
		}
		switch t := v.(type) {
		case int64:
			return onInt(t), nil
		case float64:
			return onFloat(t), nil
		default:
			return nil, fmt.Errorf("expr: numeric function over %T", v)
		}
	}
}

func absI(i int64) int64 {
	if i < 0 {
		return -i
	}
	return i
}

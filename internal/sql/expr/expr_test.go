package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"samzasql/internal/sql/types"
)

func eval(t *testing.T, e Expr, row []any) any {
	t.Helper()
	ev, err := Compile(e)
	if err != nil {
		t.Fatalf("compile %s: %v", e, err)
	}
	v, err := ev(row)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func col(i int, t types.Type) *ColRef { return &ColRef{Idx: i, Name: "c", T: t} }
func ci(v int64) *Const               { return &Const{V: v, T: types.Bigint} }
func cf(v float64) *Const             { return &Const{V: v, T: types.Double} }
func cs(v string) *Const              { return &Const{V: v, T: types.Varchar} }
func cb(v bool) *Const                { return &Const{V: v, T: types.Boolean} }
func cnull() *Const                   { return &Const{V: nil, T: types.Null} }

func TestArithmetic(t *testing.T) {
	row := []any{int64(10), 2.5}
	cases := []struct {
		e    Expr
		want any
	}{
		{&Binary{Op: Add, L: col(0, types.Bigint), R: ci(5), T: types.Bigint}, int64(15)},
		{&Binary{Op: Sub, L: col(0, types.Bigint), R: ci(3), T: types.Bigint}, int64(7)},
		{&Binary{Op: Mul, L: col(0, types.Bigint), R: ci(4), T: types.Bigint}, int64(40)},
		{&Binary{Op: Div, L: col(0, types.Bigint), R: ci(3), T: types.Bigint}, int64(3)},
		{&Binary{Op: Mod, L: col(0, types.Bigint), R: ci(3), T: types.Bigint}, int64(1)},
		{&Binary{Op: Add, L: col(1, types.Double), R: cf(0.5), T: types.Double}, 3.0},
		{&Binary{Op: Mul, L: col(0, types.Bigint), R: cf(0.5), T: types.Double}, 5.0},
		{&Neg{X: col(0, types.Bigint)}, int64(-10)},
	}
	for _, tc := range cases {
		if got := eval(t, tc.e, row); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	ev := MustCompile(&Binary{Op: Div, L: ci(1), R: ci(0), T: types.Bigint})
	if _, err := ev(nil); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		op   BinOp
		l, r Expr
		want any
	}{
		{Eq, ci(1), ci(1), true},
		{Neq, ci(1), ci(2), true},
		{Lt, ci(1), ci(2), true},
		{Lte, ci(2), ci(2), true},
		{Gt, cf(2.5), ci(2), true},
		{Gte, ci(1), cf(1.5), false},
		{Eq, cs("a"), cs("a"), true},
		{Lt, cs("a"), cs("b"), true},
		{Eq, cb(true), cb(true), true},
		{Lt, cb(false), cb(true), true},
	}
	for _, tc := range cases {
		e := &Binary{Op: tc.op, L: tc.l, R: tc.r, T: types.Boolean}
		if got := eval(t, e, nil); got != tc.want {
			t.Errorf("%s = %v, want %v", e, got, tc.want)
		}
	}
}

func TestNullPropagation(t *testing.T) {
	// NULL poisons arithmetic and comparisons.
	for _, e := range []Expr{
		&Binary{Op: Add, L: cnull(), R: ci(1), T: types.Bigint},
		&Binary{Op: Eq, L: cnull(), R: ci(1), T: types.Boolean},
		&Neg{X: cnull()},
		&Call{Fn: "GREATEST", Args: []Expr{ci(1), cnull()}, T: types.Bigint},
	} {
		if got := eval(t, e, nil); got != nil {
			t.Errorf("%s = %v, want NULL", e, got)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	// FALSE AND NULL = FALSE; TRUE OR NULL = TRUE; TRUE AND NULL = NULL.
	cases := []struct {
		op   BinOp
		l, r Expr
		want any
	}{
		{And, cb(false), cnull(), false},
		{And, cnull(), cb(false), false},
		{And, cb(true), cnull(), nil},
		{Or, cb(true), cnull(), true},
		{Or, cnull(), cb(true), true},
		{Or, cb(false), cnull(), nil},
		{And, cb(true), cb(true), true},
		{Or, cb(false), cb(false), false},
	}
	for _, tc := range cases {
		e := &Binary{Op: tc.op, L: tc.l, R: tc.r, T: types.Boolean}
		if got := eval(t, e, nil); got != tc.want {
			t.Errorf("%s = %v, want %v", e, got, tc.want)
		}
	}
}

func TestIsNullAndNot(t *testing.T) {
	if got := eval(t, &IsNull{X: cnull()}, nil); got != true {
		t.Errorf("NULL IS NULL = %v", got)
	}
	if got := eval(t, &IsNull{X: ci(1), Not: true}, nil); got != true {
		t.Errorf("1 IS NOT NULL = %v", got)
	}
	if got := eval(t, &Not{X: cb(false)}, nil); got != true {
		t.Errorf("NOT FALSE = %v", got)
	}
	if got := eval(t, &Not{X: cnull()}, nil); got != nil {
		t.Errorf("NOT NULL = %v", got)
	}
}

func TestCase(t *testing.T) {
	e := &Case{
		Whens: []CaseWhen{
			{When: &Binary{Op: Gt, L: col(0, types.Bigint), R: ci(100), T: types.Boolean}, Then: cs("big")},
			{When: &Binary{Op: Gt, L: col(0, types.Bigint), R: ci(10), T: types.Boolean}, Then: cs("mid")},
		},
		Else: cs("small"),
		T:    types.Varchar,
	}
	for _, tc := range []struct {
		in   int64
		want string
	}{{200, "big"}, {50, "mid"}, {5, "small"}} {
		if got := eval(t, e, []any{tc.in}); got != tc.want {
			t.Errorf("case(%d) = %v, want %s", tc.in, got, tc.want)
		}
	}
	// No ELSE => NULL.
	e2 := &Case{Whens: []CaseWhen{{When: cb(false), Then: ci(1)}}, T: types.Bigint}
	if got := eval(t, e2, nil); got != nil {
		t.Errorf("case without else = %v", got)
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%lo", true},
		{"hello", "h_llo", true},
		{"hello", "h_l_o", true},
		{"hello", "x%", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "%b%", true},
		{"abc", "a%%c", true},
		{"ab", "a_c", false},
	}
	for _, tc := range cases {
		e := &Like{X: cs(tc.s), Pattern: cs(tc.p)}
		if got := eval(t, e, nil); got != tc.want {
			t.Errorf("%q LIKE %q = %v, want %v", tc.s, tc.p, got, tc.want)
		}
	}
	// NOT LIKE inverts.
	e := &Like{Not: true, X: cs("abc"), Pattern: cs("a%")}
	if got := eval(t, e, nil); got != false {
		t.Errorf("NOT LIKE = %v", got)
	}
}

func TestInList(t *testing.T) {
	e := &InList{X: col(0, types.Bigint), List: []Expr{ci(1), ci(2), ci(3)}}
	if got := eval(t, e, []any{int64(2)}); got != true {
		t.Errorf("2 IN (1,2,3) = %v", got)
	}
	if got := eval(t, e, []any{int64(9)}); got != false {
		t.Errorf("9 IN (1,2,3) = %v", got)
	}
	// Unknown semantics: 9 IN (1, NULL) is NULL.
	e2 := &InList{X: ci(9), List: []Expr{ci(1), cnull()}}
	if got := eval(t, e2, nil); got != nil {
		t.Errorf("9 IN (1, NULL) = %v", got)
	}
}

func TestCasts(t *testing.T) {
	cases := []struct {
		x    Expr
		to   types.Type
		want any
	}{
		{cf(2.9), types.Bigint, int64(2)},
		{ci(2), types.Double, 2.0},
		{ci(42), types.Varchar, "42"},
		{cs("17"), types.Bigint, int64(17)},
		{cs("2.5"), types.Double, 2.5},
		{cs("true"), types.Boolean, true},
		{cb(true), types.Bigint, int64(1)},
	}
	for _, tc := range cases {
		e := &Cast{X: tc.x, T: tc.to}
		if got := eval(t, e, nil); got != tc.want {
			t.Errorf("%s = %v (%T), want %v", e, got, got, tc.want)
		}
	}
	ev := MustCompile(&Cast{X: cs("xyz"), T: types.Bigint})
	if _, err := ev(nil); err == nil {
		t.Error("cast 'xyz' to BIGINT succeeded")
	}
}

func TestScalarFunctions(t *testing.T) {
	cases := []struct {
		e    Expr
		want any
	}{
		{&Call{Fn: "GREATEST", Args: []Expr{ci(3), ci(9), ci(5)}, T: types.Bigint}, int64(9)},
		{&Call{Fn: "LEAST", Args: []Expr{ci(3), ci(9), ci(5)}, T: types.Bigint}, int64(3)},
		{&Call{Fn: "COALESCE", Args: []Expr{cnull(), ci(7)}, T: types.Bigint}, int64(7)},
		{&Call{Fn: "ABS", Args: []Expr{ci(-5)}, T: types.Bigint}, int64(5)},
		{&Call{Fn: "ABS", Args: []Expr{cf(-2.5)}, T: types.Double}, 2.5},
		{&Call{Fn: "MOD", Args: []Expr{ci(10), ci(3)}, T: types.Bigint}, int64(1)},
		{&Call{Fn: "POWER", Args: []Expr{ci(2), ci(10)}, T: types.Double}, 1024.0},
		{&Call{Fn: "SQRT", Args: []Expr{ci(16)}, T: types.Double}, 4.0},
		{&Call{Fn: "UPPER", Args: []Expr{cs("abc")}, T: types.Varchar}, "ABC"},
		{&Call{Fn: "LOWER", Args: []Expr{cs("ABC")}, T: types.Varchar}, "abc"},
		{&Call{Fn: "TRIM", Args: []Expr{cs(" x ")}, T: types.Varchar}, "x"},
		{&Call{Fn: "SUBSTRING", Args: []Expr{cs("hello"), ci(2)}, T: types.Varchar}, "ello"},
		{&Call{Fn: "SUBSTRING", Args: []Expr{cs("hello"), ci(2), ci(3)}, T: types.Varchar}, "ell"},
		{&Call{Fn: "CHAR_LENGTH", Args: []Expr{cs("hello")}, T: types.Bigint}, int64(5)},
		{&Call{Fn: "FLOOR", Args: []Expr{cf(2.7)}, T: types.Double}, 2.0},
		{&Call{Fn: "CEIL", Args: []Expr{cf(2.1)}, T: types.Double}, 3.0},
	}
	for _, tc := range cases {
		if got := eval(t, tc.e, nil); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestFloorTime(t *testing.T) {
	hour := int64(3600 * 1000)
	e := &FloorTime{X: col(0, types.Timestamp), UnitMillis: hour, UnitName: "HOUR"}
	ts := int64(3*hour + 1234567)
	if got := eval(t, e, []any{ts}); got != 3*hour {
		t.Errorf("FLOOR TO HOUR = %v, want %d", got, 3*hour)
	}
}

func TestConcat(t *testing.T) {
	e := &Binary{Op: Concat, L: cs("a"), R: ci(1), T: types.Varchar}
	if got := eval(t, e, nil); got != "a1" {
		t.Errorf("concat = %v", got)
	}
}

func TestUnknownFunctionRejected(t *testing.T) {
	if _, err := Compile(&Call{Fn: "FROB", T: types.Bigint}); err == nil {
		t.Fatal("unknown function compiled")
	}
}

// Property: LIKE with a pattern equal to the string (no wildcards) matches
// exactly that string.
func TestPropertyLikeExact(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return likeMatch(s, s) && (s == "" || !likeMatch(s+"x", s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CompareValues is antisymmetric and reflexive over int64.
func TestPropertyCompareInts(t *testing.T) {
	f := func(a, b int64) bool {
		ab, err1 := CompareValues(a, b)
		ba, err2 := CompareValues(b, a)
		aa, err3 := CompareValues(a, a)
		return err1 == nil && err2 == nil && err3 == nil &&
			ab == -ba && aa == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: integer Add/Sub round-trip.
func TestPropertyAddSubInverse(t *testing.T) {
	f := func(a, b int64) bool {
		add := MustCompile(&Binary{Op: Add, L: ci(a), R: ci(b), T: types.Bigint})
		s, err := add(nil)
		if err != nil {
			return false
		}
		sub := MustCompile(&Binary{Op: Sub, L: ci(s.(int64)), R: ci(b), T: types.Bigint})
		r, err := sub(nil)
		return err == nil && r.(int64) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package plan

import (
	"strings"
	"testing"

	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/parser"
	"samzasql/internal/sql/types"
	"samzasql/internal/sql/validate"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	objects := []*catalog.Object{
		{
			Kind: catalog.Stream, Name: "Orders", Topic: "orders", TimestampCol: "rowtime",
			Row: types.NewRowType(
				types.Column{Name: "rowtime", Type: types.Timestamp},
				types.Column{Name: "productId", Type: types.Bigint},
				types.Column{Name: "units", Type: types.Bigint},
			),
		},
		{
			Kind: catalog.Table, Name: "Products", Topic: "products",
			Row: types.NewRowType(
				types.Column{Name: "productId", Type: types.Bigint},
				types.Column{Name: "supplierId", Type: types.Bigint},
			),
		},
	}
	for _, o := range objects {
		if err := cat.Define(o); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func buildPlan(t *testing.T, query string) Node {
	t.Helper()
	stmt, err := parser.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := validate.New(testCatalog(t)).Validate(stmt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFilterProjectShape(t *testing.T) {
	p := buildPlan(t, "SELECT STREAM rowtime, units FROM Orders WHERE units > 25")
	proj, ok := p.(*Project)
	if !ok {
		t.Fatalf("root %T", p)
	}
	f, ok := proj.Input.(*Filter)
	if !ok {
		t.Fatalf("below project: %T", proj.Input)
	}
	scan, ok := f.Input.(*Scan)
	if !ok || !scan.Streaming || scan.Object.Name != "Orders" {
		t.Fatalf("leaf %v", f.Input)
	}
	if proj.Row().Arity() != 2 {
		t.Fatalf("output row %v", proj.Row())
	}
}

func TestNonStreamingScan(t *testing.T) {
	p := buildPlan(t, "SELECT rowtime FROM Orders")
	scan := leafScan(t, p)
	if scan.Streaming {
		t.Fatal("table-mode query produced a streaming scan")
	}
}

func TestStreamingPropagatesIntoSubquery(t *testing.T) {
	p := buildPlan(t, "SELECT STREAM x FROM (SELECT units AS x FROM Orders)")
	scan := leafScan(t, p)
	if !scan.Streaming {
		t.Fatal("STREAM mode lost inside subquery")
	}
}

func leafScan(t *testing.T, n Node) *Scan {
	t.Helper()
	for {
		if s, ok := n.(*Scan); ok {
			return s
		}
		ins := n.Inputs()
		if len(ins) == 0 {
			t.Fatalf("no scan leaf under %T", n)
		}
		n = ins[0]
	}
}

func TestAggregatePlanShape(t *testing.T) {
	p := buildPlan(t, `
		SELECT STREAM productId, COUNT(*) FROM Orders
		GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR), productId
		HAVING COUNT(*) > 1`)
	proj := p.(*Project)
	filter := proj.Input.(*Filter)
	agg := filter.Input.(*Aggregate)
	if agg.Window == nil || agg.Window.Kind != validate.WindowTumble {
		t.Fatalf("window %+v", agg.Window)
	}
	if len(agg.Keys) != 1 || len(agg.Aggs) != 1 {
		t.Fatalf("keys/aggs %d/%d", len(agg.Keys), len(agg.Aggs))
	}
	// Aggregate row = [key, agg].
	if agg.Row().Arity() != 2 {
		t.Fatalf("agg row %v", agg.Row())
	}
}

func TestJoinPlanMarksBootstrap(t *testing.T) {
	p := buildPlan(t, `
		SELECT STREAM Orders.rowtime FROM Orders
		JOIN Products ON Orders.productId = Products.productId`)
	s := Format(p)
	if !strings.Contains(s, "Scan(Products, bootstrap)") {
		t.Fatalf("relation scan not marked bootstrap:\n%s", s)
	}
	if !strings.Contains(s, "Scan(Orders, stream)") {
		t.Fatalf("stream scan wrong:\n%s", s)
	}
}

func TestAnalyticPlanShape(t *testing.T) {
	p := buildPlan(t, `
		SELECT STREAM rowtime, SUM(units) OVER (PARTITION BY productId
		  ORDER BY rowtime RANGE INTERVAL '5' MINUTE PRECEDING) s
		FROM Orders`)
	proj := p.(*Project)
	an := proj.Input.(*Analytic)
	if len(an.Calls) != 1 || an.Calls[0].FrameMillis != 300000 {
		t.Fatalf("analytic %+v", an.Calls)
	}
	// Extended row = input(3) + 1 call.
	if an.Row().Arity() != 4 {
		t.Fatalf("extended row %v", an.Row())
	}
}

func TestInsertWrapsPlan(t *testing.T) {
	stmt, err := parser.Parse("INSERT INTO Orders SELECT STREAM * FROM Orders WHERE units > 1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := validate.New(testCatalog(t)).Validate(stmt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(res)
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := p.(*Insert)
	if !ok || ins.Target != "Orders" {
		t.Fatalf("root %T", p)
	}
}

func TestFormatIndentsTree(t *testing.T) {
	p := buildPlan(t, "SELECT STREAM rowtime FROM Orders WHERE units > 1")
	s := Format(p)
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Fatalf("plan lines: %v", lines)
	}
	if !strings.HasPrefix(lines[1], "  ") || !strings.HasPrefix(lines[2], "    ") {
		t.Fatalf("indentation broken:\n%s", s)
	}
}

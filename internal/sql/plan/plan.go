// Package plan defines SamzaSQL's logical relational algebra — a tree of
// scan, filter, project, aggregate, analytic-window, join and insert nodes —
// and the builder that assembles it from a validated query (§4.2: "The
// physical plan is a tree of relational algebra operators such as scan,
// filter, project and join where scan operators are at the leaf nodes").
package plan

import (
	"fmt"
	"strings"

	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/types"
	"samzasql/internal/sql/validate"
)

// Node is one logical operator.
type Node interface {
	// Row is the operator's output row type.
	Row() *types.RowType
	// Inputs returns child operators.
	Inputs() []Node
	fmt.Stringer
}

// Scan reads a base stream or table.
type Scan struct {
	Object *catalog.Object
	// Streaming marks unbounded consumption (STREAM mode); bounded
	// historical reads otherwise (§3.3).
	Streaming bool
	// Bootstrap marks the relation side of a stream-to-relation join,
	// consumed as a Samza bootstrap stream (§4.4).
	Bootstrap bool
	// RepartitionCol, when set, requires the stream to be re-keyed by this
	// column through an intermediate topic before this scan consumes it
	// (§7 future work 1).
	RepartitionCol string
}

// Row implements Node.
func (s *Scan) Row() *types.RowType { return s.Object.Row }

// Inputs implements Node.
func (s *Scan) Inputs() []Node { return nil }

func (s *Scan) String() string {
	mode := "table"
	if s.Streaming {
		mode = "stream"
	}
	if s.Bootstrap {
		mode = "bootstrap"
	}
	if s.RepartitionCol != "" {
		return fmt.Sprintf("Scan(%s, %s, repartition by %s)", s.Object.Name, mode, s.RepartitionCol)
	}
	return fmt.Sprintf("Scan(%s, %s)", s.Object.Name, mode)
}

// Filter keeps rows satisfying Cond.
type Filter struct {
	Input Node
	Cond  expr.Expr
}

// Row implements Node.
func (f *Filter) Row() *types.RowType { return f.Input.Row() }

// Inputs implements Node.
func (f *Filter) Inputs() []Node { return []Node{f.Input} }

func (f *Filter) String() string { return fmt.Sprintf("Filter(%s)", f.Cond) }

// Project computes output expressions.
type Project struct {
	Input Node
	Exprs []expr.Expr
	Names []string
	row   *types.RowType
}

// NewProject builds a Project with its row type.
func NewProject(input Node, exprs []expr.Expr, names []string) *Project {
	cols := make([]types.Column, len(exprs))
	for i := range exprs {
		cols[i] = types.Column{Name: names[i], Type: exprs[i].Type()}
	}
	return &Project{Input: input, Exprs: exprs, Names: names, row: types.NewRowType(cols...)}
}

// Row implements Node.
func (p *Project) Row() *types.RowType { return p.row }

// Inputs implements Node.
func (p *Project) Inputs() []Node { return []Node{p.Input} }

func (p *Project) String() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = fmt.Sprintf("%s AS %s", e, p.Names[i])
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// Aggregate groups rows (optionally under a HOP/TUMBLE window) and computes
// aggregates. Output row = [keys..., aggs...].
type Aggregate struct {
	Input  Node
	Keys   []expr.Expr
	Window *validate.GroupWindow
	Aggs   []*validate.BoundAgg
	row    *types.RowType
}

// NewAggregate builds an Aggregate with its row type.
func NewAggregate(input Node, keys []expr.Expr, win *validate.GroupWindow, aggs []*validate.BoundAgg) *Aggregate {
	var cols []types.Column
	for i, k := range keys {
		cols = append(cols, types.Column{Name: fmt.Sprintf("$key%d", i), Type: k.Type()})
	}
	for i, a := range aggs {
		cols = append(cols, types.Column{Name: fmt.Sprintf("$agg%d", i), Type: a.T})
	}
	return &Aggregate{Input: input, Keys: keys, Window: win, Aggs: aggs, row: types.NewRowType(cols...)}
}

// Row implements Node.
func (a *Aggregate) Row() *types.RowType { return a.row }

// Inputs implements Node.
func (a *Aggregate) Inputs() []Node { return []Node{a.Input} }

func (a *Aggregate) String() string {
	var parts []string
	if a.Window != nil {
		kind := "TUMBLE"
		if a.Window.Kind == validate.WindowHop {
			kind = "HOP"
		}
		parts = append(parts, fmt.Sprintf("%s(%s, emit=%dms, retain=%dms)",
			kind, a.Window.Ts, a.Window.EmitMillis, a.Window.RetainMillis))
	}
	for _, k := range a.Keys {
		parts = append(parts, k.String())
	}
	for _, ag := range a.Aggs {
		if ag.Arg != nil {
			parts = append(parts, fmt.Sprintf("%s(%s)", ag.Fn, ag.Arg))
		} else {
			parts = append(parts, ag.Fn+"(*)")
		}
	}
	return "Aggregate(" + strings.Join(parts, ", ") + ")"
}

// Analytic extends each input row with sliding-window aggregate values
// (§3.7). Output row = [input..., calls...].
type Analytic struct {
	Input Node
	Calls []*validate.BoundAnalytic
	row   *types.RowType
}

// NewAnalytic builds an Analytic with its row type.
func NewAnalytic(input Node, calls []*validate.BoundAnalytic) *Analytic {
	cols := append([]types.Column(nil), input.Row().Columns...)
	for i, c := range calls {
		cols = append(cols, types.Column{Name: fmt.Sprintf("$win%d", i), Type: c.T})
	}
	return &Analytic{Input: input, Calls: calls, row: types.NewRowType(cols...)}
}

// Row implements Node.
func (a *Analytic) Row() *types.RowType { return a.row }

// Inputs implements Node.
func (a *Analytic) Inputs() []Node { return []Node{a.Input} }

func (a *Analytic) String() string {
	parts := make([]string, len(a.Calls))
	for i, c := range a.Calls {
		frame := "UNBOUNDED"
		switch {
		case c.IsRows:
			frame = fmt.Sprintf("ROWS %d", c.FrameRows)
		case !c.Unbounded:
			frame = fmt.Sprintf("RANGE %dms", c.FrameMillis)
		}
		parts[i] = fmt.Sprintf("%s(%s) %s", c.Fn, c.Arg, frame)
	}
	return "SlidingWindow(" + strings.Join(parts, ", ") + ")"
}

// Join combines two inputs. Output row = left columns then right columns.
type Join struct {
	Left, Right Node
	Info        *validate.JoinInfo
	row         *types.RowType
}

// NewJoin builds a Join with its row type.
func NewJoin(left, right Node, info *validate.JoinInfo) *Join {
	cols := append([]types.Column(nil), left.Row().Columns...)
	cols = append(cols, right.Row().Columns...)
	return &Join{Left: left, Right: right, Info: info, row: types.NewRowType(cols...)}
}

// Row implements Node.
func (j *Join) Row() *types.RowType { return j.row }

// Inputs implements Node.
func (j *Join) Inputs() []Node { return []Node{j.Left, j.Right} }

func (j *Join) String() string {
	if j.Info.WindowMillis > 0 {
		return fmt.Sprintf("StreamJoin(on=%s, window=%dms)", j.Info.On, j.Info.WindowMillis)
	}
	return fmt.Sprintf("Join(on=%s)", j.Info.On)
}

// Insert routes the query result into a named output stream — the "stream
// insert" operator of Figure 4.
type Insert struct {
	Input Node
	// Target is the output topic.
	Target string
}

// Row implements Node.
func (i *Insert) Row() *types.RowType { return i.Input.Row() }

// Inputs implements Node.
func (i *Insert) Inputs() []Node { return []Node{i.Input} }

func (i *Insert) String() string { return fmt.Sprintf("StreamInsert(%s)", i.Target) }

// Format renders a plan tree indented, scan leaves deepest.
func Format(n Node) string {
	var sb strings.Builder
	var rec func(Node, int)
	rec = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.String())
		sb.WriteString("\n")
		for _, c := range n.Inputs() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return sb.String()
}

package plan

import (
	"fmt"

	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/validate"
)

// Build lowers a validated query to a logical plan. When the statement was
// INSERT INTO, the plan is wrapped in an Insert sink.
func Build(res *validate.Result) (Node, error) {
	root, err := buildSelect(res.Root, res.Root.Streaming)
	if err != nil {
		return nil, err
	}
	if res.InsertTarget != "" {
		root = &Insert{Input: root, Target: res.InsertTarget}
	}
	return root, nil
}

// buildSelect lowers one query block. streaming propagates the top-level
// STREAM mode into sub-queries and views, whose own STREAM keywords were
// discarded by the validator (§3.3): under a streaming top query, stream
// scans at the leaves run unbounded.
func buildSelect(b *validate.BoundSelect, streaming bool) (Node, error) {
	var input Node
	var err error
	switch {
	case b.Join != nil:
		left, err := buildRelation(b.Scope.Rels[0], b, streaming)
		if err != nil {
			return nil, err
		}
		right, err := buildRelation(b.Scope.Rels[1], b, streaming)
		if err != nil {
			return nil, err
		}
		input = NewJoin(left, right, b.Join)
	case len(b.Scope.Rels) == 1:
		input, err = buildRelation(b.Scope.Rels[0], b, streaming)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("plan: unsupported FROM shape with %d relations", len(b.Scope.Rels))
	}

	if b.Where != nil {
		input = &Filter{Input: input, Cond: b.Where}
	}
	switch {
	case b.Grouped():
		input = NewAggregate(input, b.GroupKeys, b.Window, b.Aggs)
		if b.Having != nil {
			input = &Filter{Input: input, Cond: b.Having}
		}
	case len(b.Analytics) > 0:
		input = NewAnalytic(input, b.Analytics)
	}
	return NewProject(input, b.Projs, b.OutputNames), nil
}

// buildRelation lowers one FROM relation: a base scan or a subplan.
func buildRelation(r *validate.Relation, parent *validate.BoundSelect, streaming bool) (Node, error) {
	if r.Sub != nil {
		return buildSelect(r.Sub, streaming && r.IsStream)
	}
	if r.Object == nil {
		return nil, fmt.Errorf("plan: relation %q has neither object nor subquery", r.Alias)
	}
	scan := &Scan{Object: r.Object, Streaming: streaming && r.IsStream}
	// The relation side of a stream-to-relation join becomes a bootstrap
	// scan of the table's changelog (§4.4).
	if parent.Join != nil && r.Object.Kind == catalog.Table {
		for _, other := range parent.Scope.Rels {
			if other != r && other.IsStream {
				scan.Bootstrap = true
			}
		}
	}
	// Join sides whose equi-key differs from the publisher's partition key
	// read from a repartitioned intermediate stream (§7 future work 1).
	if parent.Join != nil && len(parent.Scope.Rels) == 2 {
		if r == parent.Scope.Rels[0] {
			scan.RepartitionCol = parent.Join.LeftRepartitionCol
		} else {
			scan.RepartitionCol = parent.Join.RightRepartitionCol
		}
	}
	return scan, nil
}

package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// maxRelErr is the layout's worst-case relative error bound (1/subBucketCount)
// with headroom for the rank falling at a bucket edge.
const maxRelErr = 2.0 / subBucketCount

func TestBucketRoundTrip(t *testing.T) {
	cases := []int64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1023, 1024, 1_000_000, 1 << 40, 1<<63 - 1}
	for _, v := range cases {
		idx := bucketIndex(v)
		upper := bucketUpperBound(idx)
		if upper < v {
			t.Errorf("value %d: bucket %d upper bound %d below value", v, idx, upper)
		}
		if v > 0 && float64(upper-v) > float64(v)*maxRelErr+1 {
			t.Errorf("value %d: upper bound %d exceeds relative error bound", v, upper)
		}
		if idx < 0 || idx >= numBuckets {
			t.Errorf("value %d: bucket %d out of range", v, idx)
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race this doubles as the data-race check for the lock-free path.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Observe(rng.Int63n(1_000_000))
			}
		}(int64(g))
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", snap.Count, goroutines*perG)
	}
	if snap.Max >= 1_000_000 || snap.P50 <= 0 || snap.P50 > snap.P95 || snap.P95 > snap.P99 {
		t.Fatalf("implausible snapshot %+v", snap)
	}
}

// TestHistogramPercentileAccuracy checks p50/p95/p99 against a reference
// sort on fixed inputs across several distributions; every reported
// percentile must be within the bucket layout's relative error of the exact
// order statistic.
func TestHistogramPercentileAccuracy(t *testing.T) {
	distributions := map[string]func(rng *rand.Rand) int64{
		"uniform":     func(rng *rand.Rand) int64 { return rng.Int63n(100_000) },
		"exponential": func(rng *rand.Rand) int64 { return int64(rng.ExpFloat64() * 10_000) },
		"bimodal": func(rng *rand.Rand) int64 {
			if rng.Intn(10) == 0 {
				return 500_000 + rng.Int63n(1000)
			}
			return 1000 + rng.Int63n(100)
		},
		"constant": func(*rand.Rand) int64 { return 4242 },
	}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			const n = 20_000
			var h Histogram
			values := make([]int64, n)
			for i := range values {
				v := gen(rng)
				values[i] = v
				h.Observe(v)
			}
			sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
			exact := func(q float64) int64 {
				rank := int(q * n)
				if rank < 1 {
					rank = 1
				}
				return values[rank-1]
			}
			snap := h.Snapshot()
			for _, c := range []struct {
				q    float64
				got  int64
				name string
			}{
				{0.50, snap.P50, "p50"},
				{0.95, snap.P95, "p95"},
				{0.99, snap.P99, "p99"},
			} {
				want := exact(c.q)
				tol := float64(want)*maxRelErr + 1
				if diff := float64(c.got - want); diff > tol || diff < -tol {
					t.Errorf("%s = %d, reference sort says %d (tolerance %.0f)", c.name, c.got, want, tol)
				}
			}
			if snap.Max != values[n-1] {
				t.Errorf("max = %d, want %d", snap.Max, values[n-1])
			}
		})
	}
}

// TestObserveZeroAllocs pins the hot-path contract: Histogram.Observe and
// the Timer start/stop pair allocate nothing, so instrumentation can sit on
// the per-message task loop without breaking the 0 allocs/op regression
// benchmarks.
func TestObserveZeroAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); allocs != 0 {
		t.Errorf("Histogram.Observe: %.1f allocs/op, want 0", allocs)
	}
	timer := r.Timer("proc")
	if allocs := testing.AllocsPerRun(1000, func() {
		start := timer.Start()
		timer.Stop(start)
	}); allocs != 0 {
		t.Errorf("Timer start/stop: %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { timer.Observe(time.Microsecond) }); allocs != 0 {
		t.Errorf("Timer.Observe: %.1f allocs/op, want 0", allocs)
	}
}

// TestQuantileEdgeCases pins the documented Quantile contract: empty
// histograms answer 0 at every q, single-bucket distributions answer the
// one recorded bucket at every q, and no quantile ever exceeds Max.
func TestQuantileEdgeCases(t *testing.T) {
	qs := []float64{-1, 0, 0.5, 0.95, 0.99, 1, 2}

	t.Run("empty", func(t *testing.T) {
		var h Histogram
		for _, q := range qs {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty histogram Quantile(%v) = %d, want 0", q, got)
			}
		}
		snap := h.Snapshot()
		if snap.P50 != 0 || snap.P95 != 0 || snap.P99 != 0 || snap.Max != 0 {
			t.Errorf("empty snapshot has nonzero percentiles: %+v", snap)
		}
	})

	t.Run("single-bucket", func(t *testing.T) {
		var h Histogram
		for i := 0; i < 100; i++ {
			h.Observe(4242) // one bucket; Max clamps the bucket upper bound
		}
		snap := h.Snapshot()
		if len(snap.Buckets) != 1 {
			t.Fatalf("expected 1 sparse bucket, got %d", len(snap.Buckets))
		}
		for _, q := range qs {
			if got := snap.Quantile(q); got != snap.Max {
				t.Errorf("single-bucket Quantile(%v) = %d, want Max=%d", q, got, snap.Max)
			}
		}
		if snap.P50 != snap.P99 {
			t.Errorf("single-bucket snapshot p50=%d != p99=%d", snap.P50, snap.P99)
		}
	})

	t.Run("clamped-to-max", func(t *testing.T) {
		var h Histogram
		h.Observe(1000)
		h.Observe(999_999)
		snap := h.Snapshot()
		for _, q := range qs {
			if got := snap.Quantile(q); got > snap.Max {
				t.Errorf("Quantile(%v) = %d exceeds Max=%d", q, got, snap.Max)
			}
		}
		if got := snap.Quantile(0); float64(got) > 1000*(1+maxRelErr)+1 {
			t.Errorf("Quantile(0) = %d, want the smallest bucket (~1000)", got)
		}
	})
}

// TestHistogramSnapshotExactMerge checks that merging per-container
// snapshots through the sparse buckets reproduces exactly the percentiles a
// single histogram over the union of observations reports.
func TestHistogramSnapshotExactMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, union Histogram
	for i := 0; i < 10_000; i++ {
		v := rng.Int63n(1_000_000)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		union.Observe(v)
	}
	merged := MergeHistograms(a.Snapshot(), b.Snapshot())
	want := union.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum || merged.Max != want.Max {
		t.Fatalf("merged count/sum/max = %d/%d/%d, union says %d/%d/%d",
			merged.Count, merged.Sum, merged.Max, want.Count, want.Sum, want.Max)
	}
	if merged.P50 != want.P50 || merged.P95 != want.P95 || merged.P99 != want.P99 {
		t.Errorf("merged percentiles %d/%d/%d differ from union %d/%d/%d",
			merged.P50, merged.P95, merged.P99, want.P50, want.P95, want.P99)
	}
	if len(merged.Buckets) == 0 {
		t.Error("merged snapshot lost its sparse buckets")
	}
	// Merging with an empty side is the identity.
	if got := MergeHistograms(merged, HistogramSnapshot{}); got.Count != merged.Count || got.P99 != merged.P99 {
		t.Errorf("merge with empty changed the snapshot: %+v", got)
	}
}

// TestHistogramSnapshotDeltaSince checks the windowed-difference path the
// monitor uses: later minus earlier recovers exactly the observations made
// in between, and a shrinking histogram (container restart) falls back to
// the later snapshot instead of going negative.
func TestHistogramSnapshotDeltaSince(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h, windowOnly Histogram
	for i := 0; i < 5000; i++ {
		h.Observe(rng.Int63n(100_000))
	}
	earlier := h.Snapshot()
	for i := 0; i < 5000; i++ {
		v := 500_000 + rng.Int63n(100_000) // shifted so the window is distinguishable
		h.Observe(v)
		windowOnly.Observe(v)
	}
	later := h.Snapshot()
	delta := later.DeltaSince(earlier)
	want := windowOnly.Snapshot()
	if delta.Count != want.Count || delta.Sum != want.Sum {
		t.Fatalf("delta count/sum = %d/%d, want %d/%d", delta.Count, delta.Sum, want.Count, want.Sum)
	}
	if delta.P50 != want.P50 || delta.P99 != want.P99 {
		t.Errorf("delta percentiles %d/%d, want %d/%d", delta.P50, delta.P99, want.P50, want.P99)
	}

	// Restart: the "later" snapshot has fewer observations than "earlier".
	var fresh Histogram
	fresh.Observe(1)
	restarted := fresh.Snapshot()
	if got := restarted.DeltaSince(earlier); got.Count != restarted.Count {
		t.Errorf("reset delta = %+v, want the later snapshot unchanged", got)
	}
	// Empty earlier is the identity.
	if got := later.DeltaSince(HistogramSnapshot{}); got.Count != later.Count {
		t.Errorf("delta since empty = %+v, want later unchanged", got)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// maxRelErr is the layout's worst-case relative error bound (1/subBucketCount)
// with headroom for the rank falling at a bucket edge.
const maxRelErr = 2.0 / subBucketCount

func TestBucketRoundTrip(t *testing.T) {
	cases := []int64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1023, 1024, 1_000_000, 1 << 40, 1<<63 - 1}
	for _, v := range cases {
		idx := bucketIndex(v)
		upper := bucketUpperBound(idx)
		if upper < v {
			t.Errorf("value %d: bucket %d upper bound %d below value", v, idx, upper)
		}
		if v > 0 && float64(upper-v) > float64(v)*maxRelErr+1 {
			t.Errorf("value %d: upper bound %d exceeds relative error bound", v, upper)
		}
		if idx < 0 || idx >= numBuckets {
			t.Errorf("value %d: bucket %d out of range", v, idx)
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race this doubles as the data-race check for the lock-free path.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Observe(rng.Int63n(1_000_000))
			}
		}(int64(g))
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", snap.Count, goroutines*perG)
	}
	if snap.Max >= 1_000_000 || snap.P50 <= 0 || snap.P50 > snap.P95 || snap.P95 > snap.P99 {
		t.Fatalf("implausible snapshot %+v", snap)
	}
}

// TestHistogramPercentileAccuracy checks p50/p95/p99 against a reference
// sort on fixed inputs across several distributions; every reported
// percentile must be within the bucket layout's relative error of the exact
// order statistic.
func TestHistogramPercentileAccuracy(t *testing.T) {
	distributions := map[string]func(rng *rand.Rand) int64{
		"uniform":     func(rng *rand.Rand) int64 { return rng.Int63n(100_000) },
		"exponential": func(rng *rand.Rand) int64 { return int64(rng.ExpFloat64() * 10_000) },
		"bimodal": func(rng *rand.Rand) int64 {
			if rng.Intn(10) == 0 {
				return 500_000 + rng.Int63n(1000)
			}
			return 1000 + rng.Int63n(100)
		},
		"constant": func(*rand.Rand) int64 { return 4242 },
	}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			const n = 20_000
			var h Histogram
			values := make([]int64, n)
			for i := range values {
				v := gen(rng)
				values[i] = v
				h.Observe(v)
			}
			sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
			exact := func(q float64) int64 {
				rank := int(q * n)
				if rank < 1 {
					rank = 1
				}
				return values[rank-1]
			}
			snap := h.Snapshot()
			for _, c := range []struct {
				q    float64
				got  int64
				name string
			}{
				{0.50, snap.P50, "p50"},
				{0.95, snap.P95, "p95"},
				{0.99, snap.P99, "p99"},
			} {
				want := exact(c.q)
				tol := float64(want)*maxRelErr + 1
				if diff := float64(c.got - want); diff > tol || diff < -tol {
					t.Errorf("%s = %d, reference sort says %d (tolerance %.0f)", c.name, c.got, want, tol)
				}
			}
			if snap.Max != values[n-1] {
				t.Errorf("max = %d, want %d", snap.Max, values[n-1])
			}
		})
	}
}

// TestObserveZeroAllocs pins the hot-path contract: Histogram.Observe and
// the Timer start/stop pair allocate nothing, so instrumentation can sit on
// the per-message task loop without breaking the 0 allocs/op regression
// benchmarks.
func TestObserveZeroAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); allocs != 0 {
		t.Errorf("Histogram.Observe: %.1f allocs/op, want 0", allocs)
	}
	timer := r.Timer("proc")
	if allocs := testing.AllocsPerRun(1000, func() {
		start := timer.Start()
		timer.Stop(start)
	}); allocs != 0 {
		t.Errorf("Timer start/stop: %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { timer.Observe(time.Microsecond) }); allocs != 0 {
		t.Errorf("Timer.Observe: %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// Package metrics provides the counters, gauges, histograms and timers
// Samza containers expose, the typed registry snapshots the metrics
// reporter publishes, and the sampling helpers the benchmark harness uses
// to compute the throughput figures in §5.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry groups named metrics for one container or task. It is safe for
// concurrent use by every task goroutine in a container: lookups of
// existing metrics take only a read lock, so hot paths that have not
// hoisted their counters contend only on the atomics inside them.
//
// Counters, gauges and histograms live in separate namespaces: registering
// a counter and a gauge under the same name yields two distinct metrics,
// and Snapshot reports them in separate typed maps so they can never
// silently overwrite each other.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Timer returns a timer view over the named histogram (shared namespace:
// Timer("x") and Histogram("x") record into the same distribution, in
// nanoseconds).
func (r *Registry) Timer(name string) Timer {
	return Timer{h: r.Histogram(name)}
}

// Snapshot is a typed point-in-time copy of a registry (or of several
// merged registries). Counters, gauges and histograms are kept in separate
// maps, so metrics of different kinds sharing a name can never collide.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// NewSnapshot returns an empty snapshot ready to be merged into.
func NewSnapshot() Snapshot {
	return Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
}

// Merge folds other into s: counters and gauges add, histogram summaries
// combine (counts/sums add, max takes max, percentiles count-weighted —
// see mergeHistogramSnapshots).
func (s Snapshot) Merge(other Snapshot) {
	for n, v := range other.Counters {
		s.Counters[n] += v
	}
	for n, v := range other.Gauges {
		s.Gauges[n] += v
	}
	for n, h := range other.Histograms {
		s.Histograms[n] = mergeHistogramSnapshots(s.Histograms[n], h)
	}
}

// Snapshot returns the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for n, c := range r.counters {
		out.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		out.Gauges[n] = g.Value()
	}
	for n, h := range r.histograms {
		out.Histograms[n] = h.Snapshot()
	}
	return out
}

// Names returns the sorted names of all registered metrics (all kinds;
// a name registered as several kinds appears once).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[string]bool, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		seen[n] = true
	}
	for n := range r.gauges {
		seen[n] = true
	}
	for n := range r.histograms {
		seen[n] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteText renders a snapshot in the introspection server's stable text
// format: one line per metric, sorted within each kind.
//
//	counter messages-processed 100000
//	gauge kafka.lag.orders.0 12
//	histogram task.Partition-0.process-ns count=41 p50=1834 p95=3702 p99=4911 max=51023
func (s Snapshot) WriteText(w io.Writer) {
	for _, n := range sortedKeys(s.Counters) {
		fmt.Fprintf(w, "counter %s %d\n", n, s.Counters[n])
	}
	for _, n := range sortedKeys(s.Gauges) {
		fmt.Fprintf(w, "gauge %s %d\n", n, s.Gauges[n])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		fmt.Fprintf(w, "histogram %s count=%d p50=%d p95=%d p99=%d max=%d\n",
			n, h.Count, h.P50, h.P95, h.P99, h.Max)
	}
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Rate measures events per second between two counter observations. Elapsed
// time is taken from the monotonic clock only (a wall-clock jump between
// samples cannot distort or negate a rate), and a counter that moves
// backwards — e.g. the underlying counter was swapped or reset between
// samples — resets the window instead of reporting a negative rate.
type Rate struct {
	counter   *Counter
	lastValue int64
	// start anchors the monotonic clock; lastElapsed is the window start
	// expressed as monotonic time since start.
	start       time.Time
	lastElapsed time.Duration
}

// NewRate starts tracking c from now.
func NewRate(c *Counter) *Rate {
	return &Rate{counter: c, lastValue: c.Value(), start: time.Now()}
}

// Sample returns events/second since the previous sample and resets the
// window. It returns 0 (without consuming the window) when no monotonic
// time has elapsed, and 0 (resetting the baseline) when the counter has
// gone backwards.
func (r *Rate) Sample() float64 {
	elapsed := time.Since(r.start) // monotonic: immune to wall-clock jumps
	dt := (elapsed - r.lastElapsed).Seconds()
	if dt <= 0 {
		return 0
	}
	v := r.counter.Value()
	if v < r.lastValue {
		// Counter swapped or reset between samples: re-baseline.
		r.lastValue = v
		r.lastElapsed = elapsed
		return 0
	}
	rate := float64(v-r.lastValue) / dt
	r.lastValue = v
	r.lastElapsed = elapsed
	return rate
}

// FormatThroughput renders msgs/sec in the unit style used by the paper's
// figures (k msgs/sec above 1000).
func FormatThroughput(perSec float64) string {
	if perSec >= 1000 {
		return fmt.Sprintf("%.1fk msg/s", perSec/1000)
	}
	return fmt.Sprintf("%.0f msg/s", perSec)
}

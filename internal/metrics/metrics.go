// Package metrics provides the counters and gauges Samza containers expose
// and the benchmark harness samples to compute the throughput figures in §5.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry groups named metrics for one container or task. It is safe for
// concurrent use by every task goroutine in a container: lookups of
// existing metrics take only a read lock, so hot paths that have not
// hoisted their counters contend only on the atomics inside them.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns all metric values keyed by name, counters and gauges
// merged, in a fresh map.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	return out
}

// Names returns the sorted names of all registered metrics.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Rate measures events per second between two counter observations.
type Rate struct {
	counter   *Counter
	lastValue int64
	lastTime  time.Time
}

// NewRate starts tracking c from now.
func NewRate(c *Counter) *Rate {
	return &Rate{counter: c, lastValue: c.Value(), lastTime: time.Now()}
}

// Sample returns events/second since the previous sample and resets the
// window.
func (r *Rate) Sample() float64 {
	now := time.Now()
	v := r.counter.Value()
	dt := now.Sub(r.lastTime).Seconds()
	if dt <= 0 {
		return 0
	}
	rate := float64(v-r.lastValue) / dt
	r.lastValue = v
	r.lastTime = now
	return rate
}

// FormatThroughput renders msgs/sec in the unit style used by the paper's
// figures (k msgs/sec above 1000).
func FormatThroughput(perSec float64) string {
	if perSec >= 1000 {
		return fmt.Sprintf("%.1fk msg/s", perSec/1000)
	}
	return fmt.Sprintf("%.0f msg/s", perSec)
}

package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	c.Add(42)
	if c.Value() != 8042 {
		t.Fatalf("counter = %d after Add", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestRegistryIdentityAndSnapshot(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("msgs")
	b := r.Counter("msgs")
	if a != b {
		t.Fatal("same name returned different counters")
	}
	a.Add(5)
	r.Gauge("lag").Set(3)
	r.Histogram("lat").Observe(7)
	snap := r.Snapshot()
	if snap.Counters["msgs"] != 5 || snap.Gauges["lag"] != 3 {
		t.Fatalf("snapshot %+v", snap)
	}
	if h := snap.Histograms["lat"]; h.Count != 1 || h.Max != 7 {
		t.Fatalf("histogram snapshot %+v", h)
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "lag" || names[1] != "lat" || names[2] != "msgs" {
		t.Fatalf("names %v", names)
	}
}

// TestSnapshotNoNameCollision pins the satellite fix: a counter and a gauge
// (and a histogram) registered under the same name must all survive into the
// snapshot with their own values — the old merged map silently let one
// overwrite the other.
func TestSnapshotNoNameCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(11)
	r.Gauge("x").Set(22)
	r.Histogram("x").Observe(33)
	snap := r.Snapshot()
	if snap.Counters["x"] != 11 {
		t.Errorf("counter x = %d, want 11", snap.Counters["x"])
	}
	if snap.Gauges["x"] != 22 {
		t.Errorf("gauge x = %d, want 22", snap.Gauges["x"])
	}
	if h := snap.Histograms["x"]; h.Count != 1 || h.Max != 33 {
		t.Errorf("histogram x = %+v, want one observation of 33", h)
	}
	// The shared name lists once.
	if names := r.Names(); len(names) != 1 || names[0] != "x" {
		t.Errorf("names = %v", names)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("msgs").Add(5)
	b.Counter("msgs").Add(7)
	a.Gauge("lag").Set(2)
	b.Gauge("lag").Set(3)
	for i := int64(1); i <= 10; i++ {
		a.Histogram("lat").Observe(i)
		b.Histogram("lat").Observe(i * 100)
	}
	merged := NewSnapshot()
	merged.Merge(a.Snapshot())
	merged.Merge(b.Snapshot())
	if merged.Counters["msgs"] != 12 || merged.Gauges["lag"] != 5 {
		t.Fatalf("merged %+v", merged)
	}
	h := merged.Histograms["lat"]
	if h.Count != 20 || h.Max < 1000 {
		t.Fatalf("merged histogram %+v", h)
	}
}

func TestRateSample(t *testing.T) {
	var c Counter
	r := NewRate(&c)
	c.Add(100)
	time.Sleep(time.Millisecond)
	rate := r.Sample()
	if rate <= 0 {
		t.Fatalf("rate = %f", rate)
	}
	// Second sample with no events should be ~0.
	time.Sleep(time.Millisecond)
	if rate2 := r.Sample(); rate2 < 0 {
		t.Fatalf("rate2 = %f", rate2)
	}
}

// TestRateCounterWentBackwards pins the satellite fix: a counter observed
// below the previous sample (swapped or reset between samples) re-baselines
// the window and reports 0 rather than a negative rate.
func TestRateCounterWentBackwards(t *testing.T) {
	var c Counter
	c.Add(1000)
	r := NewRate(&c)
	c.Add(-900) // simulates the counter being replaced by a fresh one
	time.Sleep(time.Millisecond)
	if rate := r.Sample(); rate != 0 {
		t.Fatalf("rate after regression = %f, want 0", rate)
	}
	// The baseline re-anchored at the regressed value: new growth counts.
	c.Add(50)
	time.Sleep(time.Millisecond)
	if rate := r.Sample(); rate <= 0 {
		t.Fatalf("rate after re-baseline = %f, want > 0", rate)
	}
}

func TestFormatThroughput(t *testing.T) {
	if got := FormatThroughput(1500); !strings.Contains(got, "1.5k") {
		t.Fatalf("FormatThroughput(1500) = %q", got)
	}
	if got := FormatThroughput(900); !strings.Contains(got, "900") {
		t.Fatalf("FormatThroughput(900) = %q", got)
	}
}

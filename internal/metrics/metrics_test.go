package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	c.Add(42)
	if c.Value() != 8042 {
		t.Fatalf("counter = %d after Add", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestRegistryIdentityAndSnapshot(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("msgs")
	b := r.Counter("msgs")
	if a != b {
		t.Fatal("same name returned different counters")
	}
	a.Add(5)
	r.Gauge("lag").Set(3)
	snap := r.Snapshot()
	if snap["msgs"] != 5 || snap["lag"] != 3 {
		t.Fatalf("snapshot %v", snap)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "lag" || names[1] != "msgs" {
		t.Fatalf("names %v", names)
	}
}

func TestRateSample(t *testing.T) {
	var c Counter
	r := NewRate(&c)
	c.Add(100)
	rate := r.Sample()
	if rate <= 0 {
		t.Fatalf("rate = %f", rate)
	}
	// Second sample with no events should be ~0.
	if rate2 := r.Sample(); rate2 < 0 {
		t.Fatalf("rate2 = %f", rate2)
	}
}

func TestFormatThroughput(t *testing.T) {
	if got := FormatThroughput(1500); !strings.Contains(got, "1.5k") {
		t.Fatalf("FormatThroughput(1500) = %q", got)
	}
	if got := FormatThroughput(900); !strings.Contains(got, "900") {
		t.Fatalf("FormatThroughput(900) = %q", got)
	}
}

package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values below subBucketCount are counted exactly
// (one bucket per value); above that, each power of two is split into
// subBucketCount log-scaled sub-buckets, bounding the relative error of any
// recorded value by 1/subBucketCount. With 8 sub-buckets that is 12.5%
// worst-case — tight enough for latency percentiles while keeping the whole
// histogram a flat 4 KiB array of atomics.
const (
	subBucketBits  = 3
	subBucketCount = 1 << subBucketBits // 8
	// numBuckets covers the full non-negative int64 range: buckets 0..7 are
	// exact, then (63-3) doublings of 8 sub-buckets each.
	numBuckets = (64 - subBucketBits + 1) * subBucketCount
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBucketCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // position of the top bit, >= subBucketBits
	shift := exp - subBucketBits
	sub := int((u >> uint(shift)) & (subBucketCount - 1))
	return (shift+1)*subBucketCount + sub
}

// bucketUpperBound returns the largest value a bucket holds (inclusive).
func bucketUpperBound(idx int) int64 {
	if idx < subBucketCount {
		return int64(idx)
	}
	block := idx/subBucketCount - 1 // 0-based doubling block
	sub := idx % subBucketCount
	lower := uint64(subBucketCount+sub) << uint(block)
	width := uint64(1) << uint(block)
	upper := lower + width - 1
	if upper > uint64(1<<63-1) {
		upper = 1<<63 - 1
	}
	return int64(upper)
}

// Histogram records a distribution of non-negative int64 observations
// (latencies in nanoseconds, sizes in bytes) into fixed log-scaled buckets.
// Observe is lock-free — one atomic add on the bucket plus count/sum/max
// maintenance — and allocation-free, so it can sit on per-message hot paths.
// Negative observations clamp to zero.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramSnapshot is a point-in-time summary of a histogram. Percentiles
// are computed from the log-scaled buckets, so each carries the layout's
// bounded relative error (at most 1/8 below the true value's bucket bound).
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot summarizes the current distribution. Concurrent Observe calls may
// or may not be included; the result is internally consistent enough for
// reporting (percentiles are computed from one pass over the buckets).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [numBuckets]int64
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	snap := HistogramSnapshot{
		Count: total,
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if total == 0 {
		return snap
	}
	snap.P50 = quantileFromBuckets(&counts, total, 0.50)
	snap.P95 = quantileFromBuckets(&counts, total, 0.95)
	snap.P99 = quantileFromBuckets(&counts, total, 0.99)
	if snap.P99 > snap.Max && snap.Max > 0 {
		// The top bucket's upper bound can overshoot the true maximum;
		// clamp so reported percentiles never exceed the observed max.
		snap.P99 = snap.Max
	}
	if snap.P95 > snap.Max && snap.Max > 0 {
		snap.P95 = snap.Max
	}
	if snap.P50 > snap.Max && snap.Max > 0 {
		snap.P50 = snap.Max
	}
	return snap
}

// quantileFromBuckets finds the upper bound of the bucket containing the
// q-quantile observation (rank = ceil(q * total)).
func quantileFromBuckets(counts *[numBuckets]int64, total int64, q float64) int64 {
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := range counts {
		seen += counts[i]
		if seen >= rank {
			return bucketUpperBound(i)
		}
	}
	return bucketUpperBound(numBuckets - 1)
}

// mergeHistogramSnapshots combines per-container summaries into a job-level
// view: counts, sums add; max takes the max; percentiles are count-weighted
// averages — an approximation (exact merge would need the raw buckets), good
// enough for the aggregate dumps. Per-container exact values travel through
// the metrics snapshot stream.
func mergeHistogramSnapshots(a, b HistogramSnapshot) HistogramSnapshot {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	total := a.Count + b.Count
	wavg := func(x, y int64) int64 {
		return int64((float64(x)*float64(a.Count) + float64(y)*float64(b.Count)) / float64(total))
	}
	out := HistogramSnapshot{
		Count: total,
		Sum:   a.Sum + b.Sum,
		Max:   a.Max,
		P50:   wavg(a.P50, b.P50),
		P95:   wavg(a.P95, b.P95),
		P99:   wavg(a.P99, b.P99),
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	return out
}

// Timer records durations into a histogram in nanoseconds. It is a value
// type over the underlying histogram, so callers hoist it once
// (`t := reg.Timer("x")`) and the per-event path is two time.Now calls plus
// one lock-free Observe — zero allocations.
type Timer struct {
	h *Histogram
}

// Start returns the start instant for a later Stop.
func (t Timer) Start() time.Time { return time.Now() }

// Stop records the monotonic elapsed time since start.
func (t Timer) Stop(start time.Time) { t.h.Observe(time.Since(start).Nanoseconds()) }

// Observe records an already-measured duration.
func (t Timer) Observe(d time.Duration) { t.h.Observe(d.Nanoseconds()) }

// Histogram exposes the backing histogram.
func (t Timer) Histogram() *Histogram { return t.h }

package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values below subBucketCount are counted exactly
// (one bucket per value); above that, each power of two is split into
// subBucketCount log-scaled sub-buckets, bounding the relative error of any
// recorded value by 1/subBucketCount. With 8 sub-buckets that is 12.5%
// worst-case — tight enough for latency percentiles while keeping the whole
// histogram a flat 4 KiB array of atomics.
const (
	subBucketBits  = 3
	subBucketCount = 1 << subBucketBits // 8
	// numBuckets covers the full non-negative int64 range: buckets 0..7 are
	// exact, then (63-3) doublings of 8 sub-buckets each.
	numBuckets = (64 - subBucketBits + 1) * subBucketCount
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBucketCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // position of the top bit, >= subBucketBits
	shift := exp - subBucketBits
	sub := int((u >> uint(shift)) & (subBucketCount - 1))
	return (shift+1)*subBucketCount + sub
}

// bucketUpperBound returns the largest value a bucket holds (inclusive).
func bucketUpperBound(idx int) int64 {
	if idx < subBucketCount {
		return int64(idx)
	}
	block := idx/subBucketCount - 1 // 0-based doubling block
	sub := idx % subBucketCount
	lower := uint64(subBucketCount+sub) << uint(block)
	width := uint64(1) << uint(block)
	upper := lower + width - 1
	if upper > uint64(1<<63-1) {
		upper = 1<<63 - 1
	}
	return int64(upper)
}

// Histogram records a distribution of non-negative int64 observations
// (latencies in nanoseconds, sizes in bytes) into fixed log-scaled buckets.
// Observe is lock-free — one atomic add on the bucket plus count/sum/max
// maintenance — and allocation-free, so it can sit on per-message hot paths.
// Negative observations clamp to zero.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// BucketCount is one non-empty bucket of a histogram snapshot: the flat
// bucket index (see bucketIndex) and its observation count. Snapshots carry
// buckets sparsely — a latency histogram typically fills a few dozen of the
// 496 buckets — which is what lets per-container snapshots travel over the
// metrics stream and still merge exactly on the consumer side.
type BucketCount struct {
	Index int32 `json:"i"`
	Count int64 `json:"n"`
}

// HistogramSnapshot is a point-in-time summary of a histogram. Percentiles
// are computed from the log-scaled buckets, so each carries the layout's
// bounded relative error (at most 1/8 below the true value's bucket bound).
//
// Buckets holds the sparse non-zero bucket counts the percentiles were
// computed from. When present, snapshots merge exactly (bucket-wise) and
// support Quantile at arbitrary q; a snapshot decoded from an older producer
// without buckets still merges via the count-weighted approximation.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Max     int64         `json:"max"`
	P50     int64         `json:"p50"`
	P95     int64         `json:"p95"`
	P99     int64         `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot summarizes the current distribution. Concurrent Observe calls may
// or may not be included; the result is internally consistent enough for
// reporting (percentiles are computed from one pass over the buckets).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [numBuckets]int64
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	snap := HistogramSnapshot{
		Count: total,
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if total == 0 {
		return snap
	}
	for i := range counts {
		if counts[i] != 0 {
			snap.Buckets = append(snap.Buckets, BucketCount{Index: int32(i), Count: counts[i]})
		}
	}
	snap.P50 = quantileFromBuckets(&counts, total, 0.50)
	snap.P95 = quantileFromBuckets(&counts, total, 0.95)
	snap.P99 = quantileFromBuckets(&counts, total, 0.99)
	if snap.P99 > snap.Max && snap.Max > 0 {
		// The top bucket's upper bound can overshoot the true maximum;
		// clamp so reported percentiles never exceed the observed max.
		snap.P99 = snap.Max
	}
	if snap.P95 > snap.Max && snap.Max > 0 {
		snap.P95 = snap.Max
	}
	if snap.P50 > snap.Max && snap.Max > 0 {
		snap.P50 = snap.Max
	}
	return snap
}

// quantileFromBuckets finds the upper bound of the bucket containing the
// q-quantile observation (rank = max(1, min(total, floor(q * total)))).
func quantileFromBuckets(counts *[numBuckets]int64, total int64, q float64) int64 {
	rank := quantileRank(total, q)
	var seen int64
	for i := range counts {
		seen += counts[i]
		if seen >= rank {
			return bucketUpperBound(i)
		}
	}
	return bucketUpperBound(numBuckets - 1)
}

// quantileRank maps a quantile to an observation rank in [1, total]:
// floor(q·total) clamped at both ends, so q <= 0 selects the smallest
// recorded observation and q >= 1 the largest.
func quantileRank(total int64, q float64) int64 {
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	return rank
}

// Quantile returns the value at quantile q of the distribution recorded so
// far, with the same pinned semantics as HistogramSnapshot.Quantile: 0 for
// an empty histogram, the single bucket's value for a single-bucket
// distribution (at every q), never above the observed maximum.
func (h *Histogram) Quantile(q float64) int64 {
	return h.Snapshot().Quantile(q)
}

// Quantile returns the value at quantile q, with pinned edge-case behavior:
//
//   - Empty snapshot (Count == 0): 0 for every q — "no data" is reported as
//     zero, never as a stale or sentinel value.
//   - Single-bucket distribution: every q returns that bucket's value (the
//     bucket upper bound, clamped to Max) — p50 == p99 == max by definition
//     when all observations landed in one bucket.
//   - q <= 0 selects the smallest recorded bucket, q >= 1 the largest;
//     results never exceed Max when Max is known.
//   - A snapshot without sparse buckets (decoded from an older producer)
//     degrades to the nearest precomputed percentile: P99 for q >= 0.99,
//     P95 for q >= 0.95, P50 otherwise.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if len(s.Buckets) == 0 {
		switch {
		case q >= 0.99:
			return s.P99
		case q >= 0.95:
			return s.P95
		default:
			return s.P50
		}
	}
	rank := quantileRank(s.Count, q)
	v := bucketUpperBound(int(s.Buckets[len(s.Buckets)-1].Index))
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			v = bucketUpperBound(int(b.Index))
			break
		}
	}
	if s.Max > 0 && v > s.Max {
		v = s.Max
	}
	return v
}

// DeltaSince returns the distribution recorded between an earlier and a
// later snapshot of the same histogram: bucket-wise difference with
// percentiles recomputed over the window. It is what turns the cumulative
// histograms on the metrics stream into windowed roll-ups. When the later
// snapshot is not a superset of the earlier one (the underlying histogram
// was replaced — a container restart), the later snapshot is returned
// unchanged rather than producing negative counts. Max is carried from the
// later snapshot, so it bounds the window from above but may predate it.
func (s HistogramSnapshot) DeltaSince(earlier HistogramSnapshot) HistogramSnapshot {
	if earlier.Count == 0 {
		return s
	}
	if s.Count < earlier.Count || len(s.Buckets) == 0 {
		return s
	}
	prev := make(map[int32]int64, len(earlier.Buckets))
	for _, b := range earlier.Buckets {
		prev[b.Index] = b.Count
	}
	out := HistogramSnapshot{Sum: s.Sum - earlier.Sum, Max: s.Max}
	for _, b := range s.Buckets {
		d := b.Count - prev[b.Index]
		if d < 0 {
			// Bucket shrank: not a prefix — treat as a reset.
			return s
		}
		if d > 0 {
			out.Buckets = append(out.Buckets, BucketCount{Index: b.Index, Count: d})
			out.Count += d
		}
	}
	if out.Sum < 0 {
		out.Sum = 0
	}
	out.P50 = out.Quantile(0.50)
	out.P95 = out.Quantile(0.95)
	out.P99 = out.Quantile(0.99)
	return out
}

// MergeHistograms combines two snapshots of distinct histograms (different
// containers of one job) into one. With sparse buckets on both sides the
// merge is exact: bucket counts add and percentiles are recomputed from the
// merged distribution. Without buckets it falls back to the count-weighted
// percentile approximation.
func MergeHistograms(a, b HistogramSnapshot) HistogramSnapshot {
	return mergeHistogramSnapshots(a, b)
}

// mergeHistogramSnapshots combines per-container summaries into a job-level
// view: counts, sums add; max takes the max. When both sides carry sparse
// buckets the merged percentiles are exact (recomputed from the summed
// buckets); otherwise they are count-weighted averages, good enough for the
// aggregate dumps.
func mergeHistogramSnapshots(a, b HistogramSnapshot) HistogramSnapshot {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	total := a.Count + b.Count
	out := HistogramSnapshot{
		Count: total,
		Sum:   a.Sum + b.Sum,
		Max:   a.Max,
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	if len(a.Buckets) > 0 && len(b.Buckets) > 0 {
		out.Buckets = mergeBuckets(a.Buckets, b.Buckets)
		out.P50 = out.Quantile(0.50)
		out.P95 = out.Quantile(0.95)
		out.P99 = out.Quantile(0.99)
		return out
	}
	wavg := func(x, y int64) int64 {
		return int64((float64(x)*float64(a.Count) + float64(y)*float64(b.Count)) / float64(total))
	}
	out.P50 = wavg(a.P50, b.P50)
	out.P95 = wavg(a.P95, b.P95)
	out.P99 = wavg(a.P99, b.P99)
	return out
}

// mergeBuckets sums two sorted sparse bucket lists into a new sorted list.
func mergeBuckets(a, b []BucketCount) []BucketCount {
	out := make([]BucketCount, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Index < b[j].Index:
			out = append(out, a[i])
			i++
		case a[i].Index > b[j].Index:
			out = append(out, b[j])
			j++
		default:
			out = append(out, BucketCount{Index: a[i].Index, Count: a[i].Count + b[j].Count})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Timer records durations into a histogram in nanoseconds. It is a value
// type over the underlying histogram, so callers hoist it once
// (`t := reg.Timer("x")`) and the per-event path is two time.Now calls plus
// one lock-free Observe — zero allocations.
type Timer struct {
	h *Histogram
}

// Start returns the start instant for a later Stop.
func (t Timer) Start() time.Time { return time.Now() }

// Stop records the monotonic elapsed time since start.
func (t Timer) Stop(start time.Time) { t.h.Observe(time.Since(start).Nanoseconds()) }

// Observe records an already-measured duration.
func (t Timer) Observe(d time.Duration) { t.h.Observe(d.Nanoseconds()) }

// Histogram exposes the backing histogram.
func (t Timer) Histogram() *Histogram { return t.h }

// Package zk implements a small hierarchical metadata store modeled on
// Zookeeper: versioned znodes addressed by slash-separated paths, one-shot
// watches, and ephemeral nodes bound to sessions. SamzaSQL uses it to share
// planner metadata (query text, schema locations, serde configuration)
// between the shell-side planner and the task-side planner (§4.2).
package zk

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors returned by store operations.
var (
	ErrNoNode         = errors.New("zk: node does not exist")
	ErrNodeExists     = errors.New("zk: node already exists")
	ErrBadVersion     = errors.New("zk: version mismatch")
	ErrNotEmpty       = errors.New("zk: node has children")
	ErrInvalidPath    = errors.New("zk: invalid path")
	ErrSessionExpired = errors.New("zk: session expired")
)

type node struct {
	data     []byte
	version  int64
	children map[string]*node
	// ephemeralOwner is the owning session ID, or 0 for persistent nodes.
	ephemeralOwner int64
}

// EventType describes what happened to a watched path.
type EventType int

const (
	// EventCreated fires when a watched path comes into existence.
	EventCreated EventType = iota
	// EventChanged fires when a watched node's data is set.
	EventChanged
	// EventDeleted fires when a watched node is removed.
	EventDeleted
	// EventChildren fires when a watched node's child set changes.
	EventChildren
)

// Event is delivered (once) on a watch channel.
type Event struct {
	Type EventType
	Path string
}

// Store is the in-process Zookeeper analog. Safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	root *node
	// watches are one-shot, keyed by path.
	dataWatches  map[string][]chan Event
	childWatches map[string][]chan Event

	nextSession int64
	sessions    map[int64]map[string]bool // session -> ephemeral paths
}

// NewStore returns an empty store containing only the root node "/".
func NewStore() *Store {
	return &Store{
		root:         &node{children: map[string]*node{}},
		dataWatches:  map[string][]chan Event{},
		childWatches: map[string][]chan Event{},
		sessions:     map[int64]map[string]bool{},
	}
}

// splitPath validates and splits "/a/b/c" into ["a","b","c"].
func splitPath(path string) ([]string, error) {
	if path == "/" {
		return nil, nil
	}
	if !strings.HasPrefix(path, "/") || strings.HasSuffix(path, "/") {
		return nil, fmt.Errorf("%w: %q", ErrInvalidPath, path)
	}
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("%w: %q", ErrInvalidPath, path)
		}
	}
	return parts, nil
}

func (s *Store) lookup(parts []string) (*node, bool) {
	n := s.root
	for _, p := range parts {
		c, ok := n.children[p]
		if !ok {
			return nil, false
		}
		n = c
	}
	return n, true
}

// Session opens a session for ephemeral-node ownership.
func (s *Store) Session() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSession++
	id := s.nextSession
	s.sessions[id] = map[string]bool{}
	return id
}

// CloseSession expires a session, deleting its ephemeral nodes.
func (s *Store) CloseSession(id int64) {
	s.mu.Lock()
	paths := make([]string, 0, len(s.sessions[id]))
	for p := range s.sessions[id] {
		paths = append(paths, p)
	}
	delete(s.sessions, id)
	s.mu.Unlock()
	// Delete deepest-first so parents empty out.
	sort.Slice(paths, func(i, j int) bool { return len(paths[i]) > len(paths[j]) })
	for _, p := range paths {
		_ = s.Delete(p, -1)
	}
}

// Create makes a new node at path with data. Parent must exist. If session
// is non-zero the node is ephemeral and dies with the session.
func (s *Store) Create(path string, data []byte, session int64) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot create root", ErrInvalidPath)
	}
	s.mu.Lock()
	if session != 0 {
		if _, ok := s.sessions[session]; !ok {
			s.mu.Unlock()
			return fmt.Errorf("%w: %d", ErrSessionExpired, session)
		}
	}
	parent, ok := s.lookup(parts[:len(parts)-1])
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: parent of %q", ErrNoNode, path)
	}
	name := parts[len(parts)-1]
	if _, dup := parent.children[name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNodeExists, path)
	}
	parent.children[name] = &node{
		data:           append([]byte(nil), data...),
		children:       map[string]*node{},
		ephemeralOwner: session,
	}
	if session != 0 {
		s.sessions[session][path] = true
	}
	fired := s.collectWatchesLocked(path, EventCreated)
	fired = append(fired, s.collectChildWatchesLocked(parentPath(path))...)
	s.mu.Unlock()
	deliver(fired)
	return nil
}

// CreateRecursive creates all missing persistent ancestors, then the node.
// It is idempotent on intermediate nodes but fails if the leaf exists.
func (s *Store) CreateRecursive(path string, data []byte) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	prefix := ""
	for i := 0; i < len(parts)-1; i++ {
		prefix += "/" + parts[i]
		if err := s.Create(prefix, nil, 0); err != nil && !errors.Is(err, ErrNodeExists) {
			return err
		}
	}
	return s.Create(path, data, 0)
}

// Set replaces a node's data. If version >= 0 it must match the node's
// current version (optimistic concurrency). Returns the new version.
func (s *Store) Set(path string, data []byte, version int64) (int64, error) {
	parts, err := splitPath(path)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	n, ok := s.lookup(parts)
	if !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrNoNode, path)
	}
	if version >= 0 && version != n.version {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %q have %d want %d", ErrBadVersion, path, n.version, version)
	}
	n.data = append([]byte(nil), data...)
	n.version++
	newVersion := n.version
	fired := s.collectWatchesLocked(path, EventChanged)
	s.mu.Unlock()
	deliver(fired)
	return newVersion, nil
}

// Get returns a copy of the node's data and its version.
func (s *Store) Get(path string) ([]byte, int64, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.lookup(parts)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrNoNode, path)
	}
	return append([]byte(nil), n.data...), n.version, nil
}

// Exists reports whether a node is present.
func (s *Store) Exists(path string) bool {
	parts, err := splitPath(path)
	if err != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.lookup(parts)
	return ok
}

// Children returns the sorted child names of a node.
func (s *Store) Children(path string) ([]string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.lookup(parts)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoNode, path)
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Delete removes a node. If version >= 0 it must match. Nodes with children
// cannot be deleted.
func (s *Store) Delete(path string, version int64) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot delete root", ErrInvalidPath)
	}
	s.mu.Lock()
	parent, ok := s.lookup(parts[:len(parts)-1])
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoNode, path)
	}
	name := parts[len(parts)-1]
	n, ok := parent.children[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoNode, path)
	}
	if version >= 0 && version != n.version {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q have %d want %d", ErrBadVersion, path, n.version, version)
	}
	if len(n.children) > 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotEmpty, path)
	}
	delete(parent.children, name)
	if n.ephemeralOwner != 0 {
		if sess, ok := s.sessions[n.ephemeralOwner]; ok {
			delete(sess, path)
		}
	}
	fired := s.collectWatchesLocked(path, EventDeleted)
	fired = append(fired, s.collectChildWatchesLocked(parentPath(path))...)
	s.mu.Unlock()
	deliver(fired)
	return nil
}

// WatchData registers a one-shot watch on path data changes (or creation or
// deletion). The returned channel receives exactly one event.
func (s *Store) WatchData(path string) <-chan Event {
	ch := make(chan Event, 1)
	s.mu.Lock()
	s.dataWatches[path] = append(s.dataWatches[path], ch)
	s.mu.Unlock()
	return ch
}

// WatchChildren registers a one-shot watch on membership changes of path's
// children.
func (s *Store) WatchChildren(path string) <-chan Event {
	ch := make(chan Event, 1)
	s.mu.Lock()
	s.childWatches[path] = append(s.childWatches[path], ch)
	s.mu.Unlock()
	return ch
}

type firing struct {
	ch chan Event
	ev Event
}

func (s *Store) collectWatchesLocked(path string, t EventType) []firing {
	chans := s.dataWatches[path]
	delete(s.dataWatches, path)
	out := make([]firing, 0, len(chans))
	for _, ch := range chans {
		out = append(out, firing{ch, Event{Type: t, Path: path}})
	}
	return out
}

func (s *Store) collectChildWatchesLocked(path string) []firing {
	chans := s.childWatches[path]
	delete(s.childWatches, path)
	out := make([]firing, 0, len(chans))
	for _, ch := range chans {
		out = append(out, firing{ch, Event{Type: EventChildren, Path: path}})
	}
	return out
}

func deliver(fs []firing) {
	for _, f := range fs {
		f.ch <- f.ev
		close(f.ch)
	}
}

func parentPath(path string) string {
	i := strings.LastIndex(path, "/")
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

package zk

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestCreateGetSetDelete(t *testing.T) {
	s := NewStore()
	if err := s.Create("/a", []byte("1"), 0); err != nil {
		t.Fatal(err)
	}
	data, ver, err := s.Get("/a")
	if err != nil || string(data) != "1" || ver != 0 {
		t.Fatalf("Get: %q v%d %v", data, ver, err)
	}
	ver, err = s.Set("/a", []byte("2"), 0)
	if err != nil || ver != 1 {
		t.Fatalf("Set: v%d %v", ver, err)
	}
	if _, err := s.Set("/a", []byte("3"), 0); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale Set: %v", err)
	}
	if _, err := s.Set("/a", []byte("3"), -1); err != nil {
		t.Fatalf("unconditional Set: %v", err)
	}
	if err := s.Delete("/a", -1); err != nil {
		t.Fatal(err)
	}
	if s.Exists("/a") {
		t.Fatal("node survived delete")
	}
}

func TestCreateErrors(t *testing.T) {
	s := NewStore()
	if err := s.Create("/a/b", nil, 0); !errors.Is(err, ErrNoNode) {
		t.Fatalf("orphan create: %v", err)
	}
	if err := s.Create("bad", nil, 0); !errors.Is(err, ErrInvalidPath) {
		t.Fatalf("bad path: %v", err)
	}
	if err := s.Create("/a/", nil, 0); !errors.Is(err, ErrInvalidPath) {
		t.Fatalf("trailing slash: %v", err)
	}
	if err := s.Create("/a", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/a", nil, 0); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := s.Create("/a/b", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/a", -1); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("delete parent with child: %v", err)
	}
}

func TestCreateRecursive(t *testing.T) {
	s := NewStore()
	if err := s.CreateRecursive("/x/y/z", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	data, _, err := s.Get("/x/y/z")
	if err != nil || string(data) != "deep" {
		t.Fatalf("Get deep: %q %v", data, err)
	}
	// Intermediate nodes tolerated on a second call.
	if err := s.CreateRecursive("/x/y/w", nil); err != nil {
		t.Fatal(err)
	}
	kids, err := s.Children("/x/y")
	if err != nil || len(kids) != 2 || kids[0] != "w" || kids[1] != "z" {
		t.Fatalf("Children: %v %v", kids, err)
	}
}

func TestDataWatchFiresOnce(t *testing.T) {
	s := NewStore()
	if err := s.Create("/a", nil, 0); err != nil {
		t.Fatal(err)
	}
	w := s.WatchData("/a")
	if _, err := s.Set("/a", []byte("x"), -1); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-w:
		if ev.Type != EventChanged || ev.Path != "/a" {
			t.Fatalf("event %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("watch never fired")
	}
	// One-shot: channel is closed afterwards.
	if _, open := <-w; open {
		t.Fatal("watch channel left open after delivery")
	}
}

func TestWatchCreationAndDeletion(t *testing.T) {
	s := NewStore()
	w := s.WatchData("/a")
	if err := s.Create("/a", nil, 0); err != nil {
		t.Fatal(err)
	}
	if ev := <-w; ev.Type != EventCreated {
		t.Fatalf("event %+v", ev)
	}
	w2 := s.WatchData("/a")
	if err := s.Delete("/a", -1); err != nil {
		t.Fatal(err)
	}
	if ev := <-w2; ev.Type != EventDeleted {
		t.Fatalf("event %+v", ev)
	}
}

func TestChildWatch(t *testing.T) {
	s := NewStore()
	if err := s.Create("/jobs", nil, 0); err != nil {
		t.Fatal(err)
	}
	w := s.WatchChildren("/jobs")
	if err := s.Create("/jobs/q1", nil, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-w:
		if ev.Type != EventChildren || ev.Path != "/jobs" {
			t.Fatalf("event %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("child watch never fired")
	}
}

func TestEphemeralNodesDieWithSession(t *testing.T) {
	s := NewStore()
	if err := s.Create("/live", nil, 0); err != nil {
		t.Fatal(err)
	}
	sess := s.Session()
	if err := s.Create("/live/shell-1", []byte("session info"), sess); err != nil {
		t.Fatal(err)
	}
	if !s.Exists("/live/shell-1") {
		t.Fatal("ephemeral node missing")
	}
	s.CloseSession(sess)
	if s.Exists("/live/shell-1") {
		t.Fatal("ephemeral node survived session close")
	}
	// Creating under an expired session fails.
	if err := s.Create("/live/shell-2", nil, sess); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("create on expired session: %v", err)
	}
}

// Property: Set increments the version by exactly one each time, and Get
// always returns the most recent value.
func TestPropertyVersionMonotonic(t *testing.T) {
	f := func(values [][]byte) bool {
		s := NewStore()
		if err := s.Create("/n", nil, 0); err != nil {
			return false
		}
		for i, v := range values {
			ver, err := s.Set("/n", v, -1)
			if err != nil || ver != int64(i+1) {
				return false
			}
			got, gotVer, err := s.Get("/n")
			if err != nil || gotVer != int64(i+1) || string(got) != string(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: children are always reported sorted and complete.
func TestPropertyChildrenSortedComplete(t *testing.T) {
	f := func(n uint8) bool {
		s := NewStore()
		if err := s.Create("/p", nil, 0); err != nil {
			return false
		}
		count := int(n%20) + 1
		for i := 0; i < count; i++ {
			if err := s.Create(fmt.Sprintf("/p/c%03d", i), nil, 0); err != nil {
				return false
			}
		}
		kids, err := s.Children("/p")
		if err != nil || len(kids) != count {
			return false
		}
		for i := 1; i < len(kids); i++ {
			if kids[i-1] >= kids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

GO ?= go

.PHONY: build test vet vet-custom race verify ci bench bench-figures bench-compare profile trace-overhead monitor-smoke profile-smoke profile-overhead

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (see README "Static analysis"): seven
# per-package rules (hot-path allocations, metrics binding, lock discipline,
# commit-chain error drops, goroutine supervision, trace guards, profile
# guards) plus four
# whole-program interprocedural rules (lock-order, chan-leak,
# hotpath-blocking, hotpath-escape) over the CFG/call-graph layer. Exits
# non-zero on any unsuppressed finding; timed so a regression past the ~30s
# budget is visible in CI logs.
vet-custom:
	@start=$$(date +%s); \
	$(GO) run ./cmd/samzasql-vet ./... || exit $$?; \
	end=$$(date +%s); \
	echo "samzasql-vet: clean in $$((end-start))s"

# Race-detector leg of verify. -short keeps the full-job figure sweeps out
# (bench_test.go skips them) so the whole tree stays race-checked quickly.
race:
	$(GO) test -race -short ./...

# The PR gate: static checks plus the race-enabled test run.
verify: vet vet-custom race

# What the GitHub Actions workflow runs: formatting, build, static checks,
# then the full test tree under the race detector.
ci: build
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(MAKE) vet-custom
	$(GO) test -race ./...

# Messages per figure run for the JSON report. Short runs are dominated by
# startup noise (ratios can swing 2x between 20k and 100k messages), so the
# default is the smallest count that gives stable sql_native_ratio values.
BENCH_MESSAGES ?= 100000

# Quick container/hot-path benchmarks plus the machine-readable figure
# report: regenerates every paper figure and the sliding-window store-tuning
# comparison into BENCH_results.json (per-figure rows/sec, operator p95/p99,
# cached-vs-baseline speedup).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkContainerParallelism|BenchmarkTaskLoopMachineryAllocs' -benchmem ./internal/samza/
	$(GO) test -run '^$$' -bench 'BenchmarkFilterMessageProcess' -benchmem ./internal/executor/
	$(GO) test -run '^$$' -bench '^BenchmarkSlidingWindow$$' -benchmem .
	$(GO) run ./cmd/samzasql-bench -figure all -messages $(BENCH_MESSAGES) -json BENCH_results.json

# Full paper-figure regeneration (slow; see also cmd/samzasql-bench).
bench-figures:
	$(GO) test -run '^$$' -bench . -benchmem .

# Messages per figure run for the regression comparison. Must match the
# conditions of the committed BENCH_results.json (made with BENCH_MESSAGES):
# shorter runs skew ratios enough to read as spurious regressions.
COMPARE_MESSAGES ?= $(BENCH_MESSAGES)

# Regression guard: re-measure the four figure sweeps and diff
# sql_native_ratio per (figure, containers) point against the committed
# BENCH_results.json. Exits 3 when any point drops more than 10%. CI runs
# this as a non-blocking step so batch-path wins (and future losses) show up
# in PRs without shared-runner noise blocking merges.
bench-compare:
	$(GO) run ./cmd/samzasql-bench -figure figures -messages $(COMPARE_MESSAGES) -compare BENCH_results.json

# Tracing-overhead report: first re-pin the unsampled hot paths at 0
# allocs/op with the tracing cursor bound, then the best-of-5
# sampled-vs-unsampled throughput comparison (rates 0, 0.01, 1.0) on the
# filter and sliding-window queries. CI runs this as a non-blocking report.
trace-overhead:
	$(GO) test -run 'TestFilterProcessZeroAllocsTracerBound|TestFilterProcessZeroAllocs' -count=1 -v ./internal/executor/
	$(GO) run ./cmd/samzasql-bench -figure trace -messages $(BENCH_MESSAGES) -trace-rounds 5

# End-to-end smoke of the cluster monitor: start a monitored job with an
# injected lag spike (the whole workload pre-loaded as backlog), serve the
# introspection endpoints on a loopback port, and assert over HTTP that
# /query and /alerts respond and that a lag alert fires and then resolves
# once the backlog drains. Exits non-zero on any missed assertion.
monitor-smoke:
	$(GO) run ./cmd/samzasql-bench -figure monitor-smoke -messages 20000

PROFILE_ADDR ?= 127.0.0.1:8642
PROFILE_SECONDS ?= 5

# CPU-profile a live benchmark through the introspection server: start a
# long filter-figure run with -metrics-addr, pull /debug/pprof/profile for
# PROFILE_SECONDS, write cpu.pprof, then stop the run. Inspect with
# `go tool pprof cpu.pprof`. Fails loudly (and kills the run) when the
# introspection server never answers /healthz — a busy PROFILE_ADDR used to
# make this target hang on the capture curl instead.
profile:
	$(GO) build -o /tmp/samzasql-bench ./cmd/samzasql-bench
	/tmp/samzasql-bench -figure 5a -containers 1 -messages 2000000 \
		-metrics-addr $(PROFILE_ADDR) -metrics-interval 500ms & pid=$$!; \
	up=0; \
	for i in 1 2 3 4 5 6 7 8 9 10; do \
		sleep 1; \
		if curl -fsS --max-time 2 -o /dev/null "http://$(PROFILE_ADDR)/healthz"; then up=1; break; fi; \
	done; \
	if [ $$up -ne 1 ]; then \
		echo "make profile: introspection server never answered http://$(PROFILE_ADDR)/healthz (port in use? run died?)" >&2; \
		kill $$pid 2>/dev/null || true; wait $$pid 2>/dev/null || true; exit 1; \
	fi; \
	curl -fsS --max-time $$(( $(PROFILE_SECONDS) + 10 )) -o cpu.pprof \
		"http://$(PROFILE_ADDR)/debug/pprof/profile?seconds=$(PROFILE_SECONDS)"; rc=$$?; \
	kill $$pid 2>/dev/null || true; wait $$pid 2>/dev/null || true; \
	if [ $$rc -eq 0 ]; then echo "wrote cpu.pprof"; ls -l cpu.pprof; else \
		echo "make profile: pprof capture failed (curl exit $$rc)" >&2; exit $$rc; fi

# Directory where profile-smoke saves the raw /profile JSON answers (CI
# uploads it as a build artifact).
PROFILE_ARTIFACTS ?= profile-artifacts

# End-to-end smoke of continuous profiling: a two-container profiled job
# drains a CPU-bound backlog while the monitor tails __profiles; asserts
# over HTTP that /profile serves a cluster-merged, non-empty hot-function
# top-N with contributions from both containers, then saves the raw per-kind
# /profile JSON under PROFILE_ARTIFACTS. Exits non-zero on any missed
# assertion.
profile-smoke:
	$(GO) run ./cmd/samzasql-bench -figure profile-smoke -messages 20000 -artifacts $(PROFILE_ARTIFACTS)

# Continuous-profiling overhead report: first re-pin the profiler-off hot
# path at 0 allocs/op, then the best-of-5 throughput comparison across
# profiler modes (off, default 1s/200ms, aggressive always-on) on the filter
# query. The default mode must stay within ~5% of off (EXPERIMENTS.md).
profile-overhead:
	$(GO) test -run 'TestFilterProcessZeroAllocsWithProfiler' -count=1 -v ./internal/executor/
	$(GO) run ./cmd/samzasql-bench -figure profile-overhead -messages $(BENCH_MESSAGES) -profile-rounds 5

GO ?= go

.PHONY: build test vet race verify bench bench-figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector leg of verify. -short keeps the full-job figure sweeps out
# (bench_test.go skips them) so the whole tree stays race-checked quickly.
race:
	$(GO) test -race -short ./...

# The PR gate: static checks plus the race-enabled test run.
verify: vet race

# Quick container/hot-path benchmarks added for the task-parallelism work.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkContainerParallelism|BenchmarkTaskLoopMachineryAllocs' -benchmem ./internal/samza/
	$(GO) test -run '^$$' -bench 'BenchmarkFilterMessageProcess' -benchmem ./internal/executor/

# Full paper-figure regeneration (slow; see also cmd/samzasql-bench).
bench-figures:
	$(GO) test -run '^$$' -bench . -benchmem .
